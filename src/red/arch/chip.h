// Chip-level organization (paper Fig. 1(c)): a ReRAM PIM chip is a grid of
// banks, each holding a bank controller, a global row buffer, and a set of
// crossbar subarrays with their periphery.
//
// This module answers the deployment questions the per-layer cost model
// cannot: how many physical subarrays does a whole network need under each
// design, does it fit a given chip, and what chip area results. Weights stay
// resident (PIM: no off-chip weight traffic), so the fit is determined by
// the designs' subarray demand — including RED's segmentation overhead and
// the padding-free design's wide output macros.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "red/arch/design.h"
#include "red/common/units.h"
#include "red/nn/layer.h"
#include "red/xbar/tiling.h"

namespace red::arch {

struct ChipConfig {
  int banks = 8;
  std::int64_t subarrays_per_bank = 128;
  xbar::TilingConfig subarray;               ///< physical subarray geometry
  std::int64_t global_buffer_bits = 1 << 21; ///< per-bank global row buffer
  double bank_control_area_um2 = 5.0e4;      ///< controller + decoders per bank

  void validate() const;
  [[nodiscard]] std::int64_t total_subarrays() const {
    return std::int64_t{banks} * subarrays_per_bank;
  }
};

/// One layer's physical demand on the chip.
struct LayerPlacement {
  std::string layer;
  std::int64_t subarrays = 0;        ///< crossbar tiles needed (weights resident)
  std::int64_t utilized_cells = 0;   ///< cells holding real weights
  std::int64_t allocated_cells = 0;  ///< cells in the allocated tiles
};

struct ChipPlan {
  std::vector<LayerPlacement> layers;
  std::int64_t required_subarrays = 0;
  std::int64_t available_subarrays = 0;
  bool fits = false;
  /// Fraction of allocated cells holding real weights.
  [[nodiscard]] double cell_utilization() const;
  /// Fraction of the chip's subarrays in use (when it fits).
  [[nodiscard]] double occupancy() const;
  SquareMicrons chip_area;  ///< full chip (all banks), independent of the network
};

/// Map a whole deconvolution stack onto a chip under one design.
[[nodiscard]] ChipPlan plan_chip(const Design& design,
                                 const std::vector<nn::DeconvLayerSpec>& stack,
                                 const ChipConfig& chip);

}  // namespace red::arch
