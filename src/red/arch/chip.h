// Chip-level organization (paper Fig. 1(c)): a ReRAM PIM chip is a grid of
// banks, each holding a bank controller, a global row buffer, and a set of
// crossbar subarrays with their periphery.
//
// This module answers the deployment questions the per-layer cost model
// cannot: how many physical subarrays does a whole network need under each
// design, where does each layer land, does it fit a given chip, and what
// chip area results. Weights stay resident (PIM: no off-chip weight
// traffic), so the fit is determined by the designs' subarray demand —
// including RED's segmentation overhead and the padding-free design's wide
// output macros.
//
// Placement consumes a compiled plan::StackPlan (the mapping IR): each
// layer's macro table comes straight from its LayerPlan, re-tiled onto the
// chip's own subarray geometry, and layers are assigned real subarray slots
// bank by bank — a layer's weights must reside within one bank (they share
// that bank's controller and global row buffer), so a layer whose demand
// exceeds one bank's subarrays fails with a per-layer diagnostic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "red/arch/design.h"
#include "red/common/units.h"
#include "red/nn/layer.h"
#include "red/plan/plan.h"
#include "red/xbar/tiling.h"

namespace red::arch {

struct ChipConfig {
  int banks = 8;
  std::int64_t subarrays_per_bank = 128;
  xbar::TilingConfig subarray;               ///< physical subarray geometry
  std::int64_t global_buffer_bits = 1 << 21; ///< per-bank global row buffer
  double bank_control_area_um2 = 5.0e4;      ///< controller + decoders per bank

  void validate() const;
  [[nodiscard]] std::int64_t total_subarrays() const {
    return std::int64_t{banks} * subarrays_per_bank;
  }
};

/// One layer's physical demand on the chip, plus its assigned slots.
struct LayerPlacement {
  std::string layer;
  std::int64_t subarrays = 0;        ///< crossbar tiles needed (weights resident)
  std::int64_t utilized_cells = 0;   ///< cells holding real weights
  std::int64_t allocated_cells = 0;  ///< cells in the allocated tiles

  // Real assignment (next-fit in layer order; a layer resides in one bank).
  int bank = -1;                   ///< assigned bank (-1 = placement failed)
  std::int64_t subarray_begin = 0; ///< first subarray slot within the bank
  std::int64_t subarray_end = 0;   ///< one past the last slot
  [[nodiscard]] bool placed() const { return bank >= 0; }
};

struct ChipPlan {
  std::vector<LayerPlacement> layers;
  std::int64_t required_subarrays = 0;
  std::int64_t available_subarrays = 0;
  int banks_used = 0;  ///< banks holding at least one placed layer
  /// True only when every layer received a real subarray assignment. Can be
  /// false even when required <= available: a layer bigger than one bank, or
  /// bank-boundary fragmentation, defeats an aggregate fit.
  bool fits = false;
  /// Per-layer placement failures ("layer X needs N subarrays but ...");
  /// empty exactly when fits.
  std::vector<std::string> diagnostics;
  /// Fraction of allocated cells holding real weights.
  [[nodiscard]] double cell_utilization() const;
  /// Fraction of the chip's subarrays in use (when it fits).
  [[nodiscard]] double occupancy() const;
  SquareMicrons chip_area;  ///< full chip (all banks), independent of the network
};

/// Place a compiled stack plan onto a chip: per-layer subarray demand from
/// each LayerPlan's macro table (re-tiled to the chip's subarray geometry,
/// including RED's segmentation floor), then real bank/slot assignment.
/// Accepts an empty stack (trivially fits).
[[nodiscard]] ChipPlan plan_chip(const plan::StackPlan& stack, const ChipConfig& chip);

/// Convenience wrapper: compile the stack under the design's kind/config and
/// place it. Kept for callers that don't hold a plan; requires a non-empty
/// stack (historical contract).
[[nodiscard]] ChipPlan plan_chip(const Design& design,
                                 const std::vector<nn::DeconvLayerSpec>& stack,
                                 const ChipConfig& chip);

}  // namespace red::arch
