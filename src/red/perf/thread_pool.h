// Minimal work-helping thread pool for tile/layer parallelism.
//
// parallel_for(n, fn) runs fn(0..n-1) across the pool's workers with the
// calling thread participating, and blocks until every index finished. A
// worker that calls parallel_for from inside a task simply helps drain the
// nested job, so nesting (e.g. network-level layer parallelism over designs
// whose run() tiles internally) cannot deadlock. Indices are claimed
// dynamically, so callers that need deterministic results must write into
// per-index slots and reduce after the join — every call site in this repo
// does exactly that, which is how threaded runs stay bit-exact.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>

namespace red::perf {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller is the remaining lane).
  /// threads <= 1 means no workers: parallel_for degenerates to a serial loop.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes (workers + the calling thread).
  [[nodiscard]] int threads() const;

  /// Run fn(i) for every i in [0, n); returns when all completed. The first
  /// exception thrown by any index is rethrown on the caller.
  void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn);

  /// Process-wide pool, created on first use. Sized by the RED_THREADS
  /// environment variable when set (>= 1), else hardware concurrency.
  static ThreadPool& global();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// parallel_for on the process-wide pool — except n <= 1 runs inline without
/// ever constructing the pool, so purely serial work stays thread-free.
inline void parallel_for_shared(std::int64_t n, const std::function<void(std::int64_t)>& fn) {
  if (n <= 1) {
    if (n == 1) fn(0);
    return;
  }
  ThreadPool::global().parallel_for(n, fn);
}

/// Number of contiguous chunks `threads` requested lanes get over `items`
/// work items: at least 1, never more than the items available.
inline std::int64_t chunk_count(int threads, std::int64_t items) {
  return std::clamp<std::int64_t>(threads, 1, std::max<std::int64_t>(items, 1));
}

/// Run fn(slot, begin, end) over `chunks` contiguous ranges of [0, items) on
/// the shared pool. The determinism idiom every call site follows: pre-size
/// per-slot state with the same `chunks`, write only into slot `t` inside
/// fn, and reduce after the join in slot order — bit-exact for any count.
template <typename Fn>
void parallel_chunks(std::int64_t chunks, std::int64_t items, Fn&& fn) {
  parallel_for_shared(chunks, [&](std::int64_t t) {
    fn(t, items * t / chunks, items * (t + 1) / chunks);
  });
}

}  // namespace red::perf
