// Reusable scratch buffers for the fast MVM kernels.
//
// Every buffer the bit-serial kernel needs per call — the encoded pulse
// streams, the per-column current/accumulator tiles, and the output block —
// lives here, so a warmed-up workspace makes an MVM call allocation-free.
// Workspaces are plain value types: one per thread (the kernels never share
// one across threads), reusable across crossbars of any geometry because
// prepare() only ever grows the buffers.
#pragma once

#include <cstdint>
#include <vector>

namespace red::perf {

struct MvmWorkspace {
  /// Pulse-plane-major encoded input streams: streams[b * rows + r] is the
  /// digit row r drives during pulse b. Written by the kernel's encode pass
  /// (scalar clipped kernel only; the packed kernels use in_planes).
  std::vector<std::uint8_t> streams;
  /// Packed input bit-planes for the popcount kernels, word-major so one
  /// weight word broadcasts against all planes: in_planes[w * planes_pad + j]
  /// is word w (rows 64w..64w+63) of input bit-plane j, with planes_pad the
  /// plane count rounded up to a multiple of 4 (one 256-bit lane group); the
  /// pad planes stay zero.
  std::vector<std::uint64_t> in_planes;
  /// Per-pulse compacted list of driven wordlines (row index, digit value);
  /// built once per pulse and reused across the weight slices.
  std::vector<std::int32_t> driven_rows;
  std::vector<std::uint8_t> driven_vals;
  /// Per-column integrated current of one (pulse, slice) plane.
  std::vector<std::int64_t> current;
  /// Per-column slice-recombined accumulator of one pulse.
  std::vector<std::int64_t> acc;
  /// Kernel output block: batch * cols results, vector-major.
  std::vector<std::int64_t> out;
  /// Scratch canvas for deconv scatter loops; reused for as long as the
  /// owning workspace lives (contents are transient per layer).
  std::vector<std::int32_t> canvas;

  /// Grow (never shrink) the MVM buffers for a rows x cols crossbar streaming
  /// `pulses` pulses over a batch of `batch` input vectors.
  void prepare(std::int64_t rows, std::int64_t cols, int pulses, std::int64_t batch = 1) {
    const auto need_streams = static_cast<std::size_t>(rows) * static_cast<std::size_t>(pulses);
    if (streams.size() < need_streams) streams.resize(need_streams);
    const auto need_rows = static_cast<std::size_t>(rows);
    if (driven_rows.size() < need_rows) driven_rows.resize(need_rows);
    if (driven_vals.size() < need_rows) driven_vals.resize(need_rows);
    const auto need_cols = static_cast<std::size_t>(cols);
    if (current.size() < need_cols) current.resize(need_cols);
    if (acc.size() < need_cols) acc.resize(need_cols);
    const auto need_out = static_cast<std::size_t>(batch) * need_cols;
    if (out.size() < need_out) out.resize(need_out);
  }

  /// Grow (never shrink) the packed input-plane buffer for a rows-wordline
  /// crossbar streaming `planes_pad` (already padded) input bit-planes. Like
  /// prepare(), sizing is per shape, not per call: a warmed-up workspace
  /// re-encodes in place with no heap traffic across mvm_batch calls.
  void prepare_packed(std::int64_t rows, int planes_pad) {
    const auto need = static_cast<std::size_t>((rows + 63) / 64) *
                      static_cast<std::size_t>(planes_pad);
    if (in_planes.size() < need) in_planes.resize(need);
  }
};

}  // namespace red::perf
