#include "red/perf/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "red/common/contracts.h"
#include "red/telemetry/metrics.h"

namespace red::perf {

namespace {

/// One parallel_for invocation: indices are claimed via `next`; the job is
/// finished when `completed` reaches `n`.
struct Job {
  std::int64_t n = 0;
  const std::function<void(std::int64_t)>* fn = nullptr;
  std::atomic<std::int64_t> next{0};
  std::atomic<bool> failed{false};  // set once an index threw: skip the rest
  std::int64_t completed = 0;       // guarded by the pool mutex
  std::exception_ptr error;         // first failure, guarded by the pool mutex
  // Telemetry sinks, resolved once per parallel_for when a registry is
  // installed (all nullptr otherwise, so the per-index cost stays one branch).
  // Observe-only: nothing here feeds back into scheduling or results.
  telemetry::Counter* tasks_metric = nullptr;
  telemetry::Counter* steals_metric = nullptr;   // indices run by pool workers
  telemetry::Histogram* duration_metric = nullptr;
};

/// Run one claimed index, feeding the per-task duration histogram when a
/// metrics sink was installed at job-post time.
void run_index(const Job& job, std::int64_t i) {
  if (job.duration_metric == nullptr) {
    (*job.fn)(i);
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  (*job.fn)(i);
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - start);
  job.duration_metric->record(static_cast<std::uint64_t>(ns.count()));
}

}  // namespace

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;   // workers: a job was posted / shutdown
  std::condition_variable done_cv;   // callers: some job completed indices
  std::deque<std::shared_ptr<Job>> jobs;  // jobs with unclaimed indices
  std::vector<std::thread> workers;
  bool shutdown = false;
  int lanes = 1;

  /// Claim and run indices of `job` until none remain. Returns with the pool
  /// lock NOT held. Each finished index bumps `completed` under the lock.
  /// `helper` marks a pool worker (vs the posting caller) for steal counts.
  void drain(const std::shared_ptr<Job>& job, bool helper = false) {
    for (;;) {
      const std::int64_t i = job->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job->n) return;
      if (job->tasks_metric != nullptr) {
        job->tasks_metric->add(1);
        if (helper) job->steals_metric->add(1);
      }
      std::exception_ptr err;
      // Once any index threw, remaining indices are claimed but not run
      // (matching the serial loop's stop-at-first-exception semantics as
      // closely as cancellation allows) — they still count as completed so
      // the caller's join accounting terminates.
      if (!job->failed.load(std::memory_order_acquire)) {
        try {
          run_index(*job, i);
        } catch (...) {
          err = std::current_exception();
          job->failed.store(true, std::memory_order_release);
        }
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (err && !job->error) job->error = err;
        if (++job->completed == job->n) done_cv.notify_all();
      }
    }
  }

  void worker_loop() {
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return shutdown || !jobs.empty(); });
        if (shutdown && jobs.empty()) return;
        job = jobs.front();
        // Pop exhausted jobs so workers don't spin on them; drain() below
        // re-checks `next` itself, so racing on this is harmless.
        if (job->next.load(std::memory_order_relaxed) >= job->n) {
          jobs.pop_front();
          continue;
        }
      }
      drain(job, /*helper=*/true);
    }
  }
};

ThreadPool::ThreadPool(int threads) : impl_(std::make_unique<Impl>()) {
  RED_EXPECTS(threads >= 1);
  impl_->lanes = threads;
  for (int i = 0; i < threads - 1; ++i)
    impl_->workers.emplace_back([impl = impl_.get()] { impl->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (auto& w : impl_->workers) w.join();
}

int ThreadPool::threads() const { return impl_->lanes; }

void ThreadPool::parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn) {
  RED_EXPECTS(n >= 0);
  if (n == 0) return;
  auto* m = telemetry::metrics();
  if (impl_->workers.empty() || n == 1) {
    if (m == nullptr) {
      for (std::int64_t i = 0; i < n; ++i) fn(i);
      return;
    }
    Job serial;
    serial.n = n;
    serial.fn = &fn;
    serial.tasks_metric = m->counter("pool.tasks");
    serial.steals_metric = m->counter("pool.help_steals");
    serial.duration_metric = m->histogram("pool.task_duration_ns");
    m->counter("pool.parallel_for")->add(1);
    for (std::int64_t i = 0; i < n; ++i) {
      serial.tasks_metric->add(1);
      run_index(serial, i);
    }
    return;
  }
  auto job = std::make_shared<Job>();
  job->n = n;
  job->fn = &fn;
  if (m != nullptr) {
    job->tasks_metric = m->counter("pool.tasks");
    job->steals_metric = m->counter("pool.help_steals");
    job->duration_metric = m->histogram("pool.task_duration_ns");
    m->counter("pool.parallel_for")->add(1);
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->jobs.push_back(job);
    if (m != nullptr)
      m->histogram("pool.queue_depth")->record(impl_->jobs.size());
  }
  impl_->work_cv.notify_all();
  impl_->drain(job);  // the caller is a lane too
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->done_cv.wait(lock, [&] { return job->completed == job->n; });
  const auto it = std::find(impl_->jobs.begin(), impl_->jobs.end(), job);
  if (it != impl_->jobs.end()) impl_->jobs.erase(it);
  if (job->error) std::rethrow_exception(job->error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("RED_THREADS")) {
      const int n = std::atoi(env);
      if (n >= 1) return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(std::min(hw, 16u));
  }());
  return pool;
}

}  // namespace red::perf
