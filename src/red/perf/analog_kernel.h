// Fast IR-drop solver: ADI line relaxation over the crossbar nodal system.
//
// The reference solver (xbar/analog.cpp) runs point-SOR over the
// 2 * rows * cols coupled node voltages; its convergence is limited by the
// wire-resistance coupling *along* each wordline/bitline, which point
// updates propagate one cell per sweep. This kernel re-lays the system into
// contiguous per-wordline and per-bitline planes and replaces the point
// updates with alternating-direction line relaxation: each sweep solves
// every wordline row exactly (bitline plane frozen), then every bitline
// column exactly (wordline plane frozen), via the Thomas tridiagonal
// algorithm. The stiff in-line coupling is eliminated per sweep, leaving
// only the weak cell-conductance coupling between the two planes
// (g_cell << g_wire for realistic devices), so the sweep count drops from
// thousands to a handful.
//
// Line solves within one pass are independent — rows only read the frozen
// bitline plane and vice versa — so they fan out across the process-wide
// perf::ThreadPool in deterministic chunks: any thread count produces
// bit-identical voltages, because no line ever reads another line's
// same-pass update (the pass is Jacobi *between* lines, exact *within* a
// line).
//
// The reference SOR stays in xbar/analog.cpp as the equivalence oracle;
// tests/analog_fast_path_test.cpp gates this kernel against it within the
// solver tolerance across array sizes, wire resistances, and drive patterns.
#pragma once

#include <cstdint>
#include <vector>

#include "red/xbar/analog.h"

namespace red::perf {

/// Reusable scratch of the ADI solver. prepare() only ever grows buffers, so
/// a warmed-up workspace makes repeated solve calls allocation-free.
/// Workspaces are value types; never share one across concurrent solves.
struct AnalogWorkspace {
  std::vector<double> g_lut;       ///< level -> cell conductance (S)
  std::vector<double> g_cell;      ///< per-cell conductances, row-major
  std::vector<double> vw;          ///< wordline node voltages, row-major
  std::vector<double> vb;          ///< bitline node voltages, row-major
  std::vector<double> thomas_c;    ///< per-lane forward-elimination scratch
  std::vector<double> thomas_d;    ///< per-lane forward-elimination scratch
  std::vector<double> lane_delta;  ///< per-lane max-update slots (reduced after join)

  /// Grow the buffers for a rows x cols solve fanning lines over `lanes`
  /// thread-pool chunks.
  void prepare(std::int64_t rows, std::int64_t cols, int max_level, std::int64_t lanes) {
    const auto need_lut = static_cast<std::size_t>(max_level) + 1;
    if (g_lut.size() < need_lut) g_lut.resize(need_lut);
    const auto plane = static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
    if (g_cell.size() < plane) g_cell.resize(plane);
    if (vw.size() < plane) vw.resize(plane);
    if (vb.size() < plane) vb.resize(plane);
    const auto line = static_cast<std::size_t>(rows > cols ? rows : cols);
    const auto need_scratch = line * static_cast<std::size_t>(lanes);
    if (thomas_c.size() < need_scratch) thomas_c.resize(need_scratch);
    if (thomas_d.size() < need_scratch) thomas_d.resize(need_scratch);
    if (lane_delta.size() < static_cast<std::size_t>(lanes))
      lane_delta.resize(static_cast<std::size_t>(lanes));
  }
};

/// Fast drop-in equivalent of xbar::solve_crossbar_read: identical inputs,
/// identical result semantics (column/ideal currents, converged flag;
/// `iterations` counts ADI sweeps instead of SOR sweeps). With `threads > 1`
/// the independent line solves of each pass run on the process-wide
/// ThreadPool; results are bit-identical for any thread count.
[[nodiscard]] xbar::AnalogResult solve_crossbar_read_fast(
    const std::vector<std::uint8_t>& levels, std::int64_t rows, std::int64_t cols,
    int max_level, const std::vector<std::uint8_t>& inputs, const xbar::AnalogConfig& cfg,
    AnalogWorkspace& ws, int threads = 1);

}  // namespace red::perf
