#include "red/perf/mvm_kernel.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <limits>
#include <string>

#include "red/common/contracts.h"
#include "red/common/error.h"
#include "red/telemetry/metrics.h"

#if defined(__x86_64__) || defined(__i386__)
#define RED_MVM_X86 1
#include <immintrin.h>
#else
#define RED_MVM_X86 0
#endif

namespace red::perf {

namespace {

using xbar::AdcMode;
using xbar::LogicalXbar;
using xbar::MvmStats;
using xbar::QuantConfig;

/// Wordline pulses transmitting `a` ('1' bits, or non-zero DAC digits).
/// Range-checked equivalent of xbar::pulse_count without the per-call
/// config validation and heap traffic.
int fast_pulse_count(std::int32_t a, const QuantConfig& q) {
  if (q.dac_bits == 1) {
    const std::int64_t half = std::int64_t{1} << (q.abits - 1);
    RED_EXPECTS_MSG(a >= -half && a < half, "activation outside abits signed range");
    const std::uint64_t u =
        static_cast<std::uint64_t>(a) & ((std::uint64_t{1} << q.abits) - 1);
    return std::popcount(u);
  }
  RED_EXPECTS_MSG(a >= 0, "multi-bit DAC streaming requires non-negative activations");
  RED_EXPECTS_MSG(a < (std::int64_t{1} << q.abits), "activation exceeds abits unsigned range");
  const int digit_max = (1 << q.dac_bits) - 1;
  int n = 0;
  std::int64_t u = a;
  for (int b = 0; b < q.pulses(); ++b) {
    n += (u & digit_max) != 0 ? 1 : 0;
    u >>= q.dac_bits;
  }
  return n;
}

struct EncodeSummary {
  std::int64_t input_sum = 0;
  std::int64_t drives = 0;      ///< rows with a non-zero input
  std::int64_t pulse_rows = 0;  ///< sum over rows of per-row pulse counts
};

/// Range-check the inputs and accumulate the activity summary shared by all
/// kernel variants (matching the reference's per-row accounting exactly).
EncodeSummary summarize_input(std::span<const std::int32_t> input, const QuantConfig& q) {
  EncodeSummary s;
  for (auto v : input) {
    s.input_sum += v;
    if (v == 0) {
      // Still range-check: the reference encodes zero rows too.
      (void)fast_pulse_count(v, q);
      continue;
    }
    ++s.drives;
    s.pulse_rows += fast_pulse_count(v, q);
  }
  return s;
}

// ---------------------------------------------------------------------------
// Scalar oracle kernels (MvmIsa::kScalar): the pre-packed row-sweep pair,
// kept bit-for-bit as in-process equivalence oracles for the packed tiers.
// ---------------------------------------------------------------------------

/// Write the pulse-plane-major streams: streams[b * rows + r] = digit b of
/// input[r]. Inputs must already be range-checked (summarize_input).
void encode_streams(std::span<const std::int32_t> input, const QuantConfig& q,
                    std::uint8_t* streams) {
  const auto rows = static_cast<std::int64_t>(input.size());
  const int num_pulses = q.pulses();
  if (q.dac_bits == 1) {
    const std::uint64_t mask = (std::uint64_t{1} << q.abits) - 1;
    for (std::int64_t r = 0; r < rows; ++r) {
      const std::uint64_t u = static_cast<std::uint64_t>(input[static_cast<std::size_t>(r)]) &
                              mask;
      for (int b = 0; b < num_pulses; ++b)
        streams[static_cast<std::size_t>(b) * rows + r] =
            static_cast<std::uint8_t>((u >> b) & 1u);
    }
    return;
  }
  const int digit_max = (1 << q.dac_bits) - 1;
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int64_t u = input[static_cast<std::size_t>(r)];
    for (int b = 0; b < num_pulses; ++b) {
      streams[static_cast<std::size_t>(b) * rows + r] =
          static_cast<std::uint8_t>(u & digit_max);
      u >>= q.dac_bits;
    }
  }
}

/// Ideal-ADC bit-accurate MVM: with no clipping the pulse/slice decomposition
/// collapses algebraically, so one signed row-sweep per slice suffices:
/// out[c] = sum_s (sum_r in[r] * plane_s[r][c]) << (cell_bits * s) minus the
/// offset-encoding correction. Bit-exact vs the reference by construction.
void ideal_kernel(const LogicalXbar& xbar, std::span<const std::int32_t> input,
                  const EncodeSummary& sum, MvmWorkspace& ws, std::int64_t* out) {
  const std::int64_t rows = xbar.rows();
  const std::int64_t cols = xbar.cols();
  const QuantConfig& q = xbar.config();
  const int slices = q.slices();

  std::int64_t* acc = ws.acc.data();
  std::int64_t* current = ws.current.data();
  std::fill(acc, acc + cols, std::int64_t{0});
  for (int s = 0; s < slices; ++s) {
    std::fill(current, current + cols, std::int64_t{0});
    const std::uint8_t* plane = xbar.level_plane(s);
    for (std::int64_t r = 0; r < rows; ++r) {
      const std::int64_t in = input[static_cast<std::size_t>(r)];
      if (in == 0) continue;
      const std::uint8_t* row = plane + r * cols;
      for (std::int64_t c = 0; c < cols; ++c) current[c] += in * row[c];
    }
    const int shift = q.cell_bits * s;
    for (std::int64_t c = 0; c < cols; ++c) acc[c] += current[c] << shift;
  }
  const std::int64_t correction = std::int64_t{q.weight_offset()} * sum.input_sum;
  for (std::int64_t c = 0; c < cols; ++c) out[c] = acc[c] - correction;
}

/// Clipped-ADC bit-accurate MVM: integrates every (pulse, slice) plane
/// through the saturating ADC exactly like the reference, but sweeps
/// contiguous level-plane rows over a per-pulse compacted driven-row list.
/// Returns the number of saturated conversions.
std::int64_t clipped_kernel(const LogicalXbar& xbar, MvmWorkspace& ws, std::int64_t input_sum,
                            std::int64_t* out) {
  const std::int64_t rows = xbar.rows();
  const std::int64_t cols = xbar.cols();
  const QuantConfig& q = xbar.config();
  const int slices = q.slices();
  const int num_pulses = q.pulses();
  const std::int64_t clip_max = (std::int64_t{1} << q.adc.bits) - 1;

  std::int64_t* acc = ws.acc.data();
  std::int64_t* current = ws.current.data();
  std::fill(out, out + cols, std::int64_t{0});
  std::int64_t clips = 0;
  for (int b = 0; b < num_pulses; ++b) {
    // Compact the driven wordlines of this pulse once, reused per slice.
    const std::uint8_t* sp = ws.streams.data() + static_cast<std::size_t>(b) * rows;
    std::int64_t nd = 0;
    for (std::int64_t r = 0; r < rows; ++r)
      if (sp[r] != 0) {
        ws.driven_rows[static_cast<std::size_t>(nd)] = static_cast<std::int32_t>(r);
        ws.driven_vals[static_cast<std::size_t>(nd)] = sp[r];
        ++nd;
      }
    // An undriven pulse integrates zero current on every column: no output
    // contribution and (since clip_max >= 1) no clips. Skip it.
    if (nd == 0) continue;

    // Bit-serial: the MSB plane carries the two's-complement negative weight.
    // Multi-bit DAC: digits are unsigned (non-negative activations only).
    const std::int64_t pulse_weight = (q.dac_bits == 1 && b == q.abits - 1)
                                          ? -(std::int64_t{1} << b)
                                          : (std::int64_t{1} << (q.dac_bits * b));
    std::fill(acc, acc + cols, std::int64_t{0});
    for (int s = 0; s < slices; ++s) {
      std::fill(current, current + cols, std::int64_t{0});
      const std::uint8_t* plane = xbar.level_plane(s);
      if (q.dac_bits == 1) {
        for (std::int64_t k = 0; k < nd; ++k) {
          const std::uint8_t* row = plane + std::int64_t{ws.driven_rows[static_cast<std::size_t>(k)]} * cols;
          for (std::int64_t c = 0; c < cols; ++c) current[c] += row[c];
        }
      } else {
        for (std::int64_t k = 0; k < nd; ++k) {
          const std::int64_t d = ws.driven_vals[static_cast<std::size_t>(k)];
          const std::uint8_t* row = plane + std::int64_t{ws.driven_rows[static_cast<std::size_t>(k)]} * cols;
          for (std::int64_t c = 0; c < cols; ++c) current[c] += d * row[c];
        }
      }
      const int shift = q.cell_bits * s;
      for (std::int64_t c = 0; c < cols; ++c) {
        std::int64_t cur = current[c];
        if (cur > clip_max) {
          cur = clip_max;
          ++clips;
        }
        acc[c] += cur << shift;
      }
    }
    for (std::int64_t c = 0; c < cols; ++c) out[c] += pulse_weight * acc[c];
  }
  const std::int64_t correction = std::int64_t{q.weight_offset()} * input_sum;
  for (std::int64_t c = 0; c < cols; ++c) out[c] -= correction;
  return clips;
}

// ---------------------------------------------------------------------------
// Packed bit-plane kernels (MvmIsa::kPortable and up).
//
// Both operand sides are bitmaps over the rows: LogicalXbar keeps one packed
// plane per stored-level bit u (weight planes, per column), and encode_packed
// lays down one plane per input bit j. Every kernel then reduces to weighted
// popcounts of plane intersections:
//
//   L[j][u] = popcount(in_plane_j & w_plane_u[c])   (ones shared by bit j of
//                                                    the input and bit u of
//                                                    the stored levels)
//
// lane_sums_* computes the only aggregate the kernels need — for a run of
// `ucount` consecutive weight planes, lanes[j] = sum_du (L[j][du] << du) —
// with the input planes word-major (all planes of word w adjacent) so one
// broadcast weight word feeds 4-lane SIMD popcounts.
// ---------------------------------------------------------------------------

/// Hard bounds from QuantConfig::validate: abits <= 16 input planes, padded
/// to a multiple of 4; slices() * cell_bits <= 19 weight planes.
constexpr int kMaxPlanesPad = 16;
constexpr int kMaxSlices = 16;

/// Input bit-planes, padded to one 256-bit lane group (pad planes stay 0).
int padded_planes(const QuantConfig& q) { return (q.abits + 3) & ~3; }

using LaneSumsFn = void (*)(const std::uint64_t* ip, std::int64_t words, int planes_pad,
                            const std::uint64_t* wplanes, int ucount, std::int64_t* lanes);

void lane_sums_portable(const std::uint64_t* ip, std::int64_t words, int planes_pad,
                        const std::uint64_t* wplanes, int ucount, std::int64_t* lanes) {
  std::fill(lanes, lanes + planes_pad, std::int64_t{0});
  for (int du = 0; du < ucount; ++du) {
    const std::uint64_t* wp = wplanes + static_cast<std::size_t>(du) * words;
    for (std::int64_t w = 0; w < words; ++w) {
      const std::uint64_t wv = wp[w];
      if (wv == 0) continue;  // bit-sparsity: empty weight words cost nothing
      const std::uint64_t* iw = ip + w * planes_pad;
      for (int j = 0; j < planes_pad; ++j)
        lanes[j] += static_cast<std::int64_t>(std::popcount(iw[j] & wv)) << du;
    }
  }
}

#if RED_MVM_X86

__attribute__((target("popcnt"))) void lane_sums_popcnt(const std::uint64_t* ip,
                                                        std::int64_t words, int planes_pad,
                                                        const std::uint64_t* wplanes, int ucount,
                                                        std::int64_t* lanes) {
  std::fill(lanes, lanes + planes_pad, std::int64_t{0});
  for (int du = 0; du < ucount; ++du) {
    const std::uint64_t* wp = wplanes + static_cast<std::size_t>(du) * words;
    for (std::int64_t w = 0; w < words; ++w) {
      const std::uint64_t wv = wp[w];
      if (wv == 0) continue;
      const std::uint64_t* iw = ip + w * planes_pad;
      for (int j = 0; j < planes_pad; ++j)
        lanes[j] += static_cast<std::int64_t>(std::popcount(iw[j] & wv)) << du;
    }
  }
}

/// AVX2 lane groups: one broadcast weight word ANDs against 4 input planes
/// per 256-bit vector; byte-wise nibble-LUT popcount (vpshufb) horizontally
/// summed into the 4 64-bit lanes by vpsadbw, shifted into plane-bit position
/// and accumulated per lane. kGroups = planes_pad / 4 is a template constant
/// so the accumulators stay in registers.
template <int kGroups>
__attribute__((target("avx2,popcnt"))) void lane_sums_avx2_impl(
    const std::uint64_t* ip, std::int64_t words, const std::uint64_t* wplanes, int ucount,
    std::int64_t* lanes) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3,
                       1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0F);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc[kGroups];
  for (int g = 0; g < kGroups; ++g) acc[g] = zero;
  for (int du = 0; du < ucount; ++du) {
    const std::uint64_t* wp = wplanes + static_cast<std::size_t>(du) * words;
    for (std::int64_t w = 0; w < words; ++w) {
      const __m256i wv = _mm256_set1_epi64x(static_cast<long long>(wp[w]));
      const std::uint64_t* iw = ip + w * (4 * kGroups);
      for (int g = 0; g < kGroups; ++g) {
        const __m256i x = _mm256_and_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(iw + 4 * g)), wv);
        const __m256i nib = _mm256_add_epi8(
            _mm256_shuffle_epi8(lut, _mm256_and_si256(x, low)),
            _mm256_shuffle_epi8(lut, _mm256_and_si256(_mm256_srli_epi32(x, 4), low)));
        acc[g] = _mm256_add_epi64(acc[g], _mm256_slli_epi64(_mm256_sad_epu8(nib, zero), du));
      }
    }
  }
  for (int g = 0; g < kGroups; ++g)
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes + 4 * g), acc[g]);
}

void lane_sums_avx2(const std::uint64_t* ip, std::int64_t words, int planes_pad,
                    const std::uint64_t* wplanes, int ucount, std::int64_t* lanes) {
  switch (planes_pad / 4) {
    case 1:
      return lane_sums_avx2_impl<1>(ip, words, wplanes, ucount, lanes);
    case 2:
      return lane_sums_avx2_impl<2>(ip, words, wplanes, ucount, lanes);
    case 3:
      return lane_sums_avx2_impl<3>(ip, words, wplanes, ucount, lanes);
    default:
      return lane_sums_avx2_impl<4>(ip, words, wplanes, ucount, lanes);
  }
}

/// AVX512-VPOPCNTDQ at 256-bit width: the nibble LUT collapses to one
/// vpopcntq per lane group.
template <int kGroups>
__attribute__((target("avx512vpopcntdq,avx512vl,avx512f,popcnt"))) void lane_sums_avx512_impl(
    const std::uint64_t* ip, std::int64_t words, const std::uint64_t* wplanes, int ucount,
    std::int64_t* lanes) {
  __m256i acc[kGroups];
  for (int g = 0; g < kGroups; ++g) acc[g] = _mm256_setzero_si256();
  for (int du = 0; du < ucount; ++du) {
    const std::uint64_t* wp = wplanes + static_cast<std::size_t>(du) * words;
    for (std::int64_t w = 0; w < words; ++w) {
      const __m256i wv = _mm256_set1_epi64x(static_cast<long long>(wp[w]));
      const std::uint64_t* iw = ip + w * (4 * kGroups);
      for (int g = 0; g < kGroups; ++g) {
        const __m256i x = _mm256_and_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(iw + 4 * g)), wv);
        acc[g] = _mm256_add_epi64(acc[g], _mm256_slli_epi64(_mm256_popcnt_epi64(x), du));
      }
    }
  }
  for (int g = 0; g < kGroups; ++g)
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes + 4 * g), acc[g]);
}

void lane_sums_avx512(const std::uint64_t* ip, std::int64_t words, int planes_pad,
                      const std::uint64_t* wplanes, int ucount, std::int64_t* lanes) {
  switch (planes_pad / 4) {
    case 1:
      return lane_sums_avx512_impl<1>(ip, words, wplanes, ucount, lanes);
    case 2:
      return lane_sums_avx512_impl<2>(ip, words, wplanes, ucount, lanes);
    case 3:
      return lane_sums_avx512_impl<3>(ip, words, wplanes, ucount, lanes);
    default:
      return lane_sums_avx512_impl<4>(ip, words, wplanes, ucount, lanes);
  }
}

#endif  // RED_MVM_X86

LaneSumsFn lane_sums_fn(MvmIsa isa) {
  switch (isa) {
#if RED_MVM_X86
    case MvmIsa::kPopcnt:
      return &lane_sums_popcnt;
    case MvmIsa::kAvx2:
      return &lane_sums_avx2;
    case MvmIsa::kAvx512:
      return &lane_sums_avx512;
#endif
    default:
      return &lane_sums_portable;
  }
}

/// Zero and fill the word-major packed input planes: bit r%64 of
/// in_planes[(r/64) * planes_pad + j] is bit j of input[r] & (2^abits - 1).
/// Uniform for every dac_bits — a multi-bit DAC digit is just a run of
/// consecutive bit-planes — and negative dac_bits==1 activations wrap to
/// their two's-complement abits pattern exactly like the scalar encode.
/// Inputs must already be range-checked (summarize_input). Only set bits are
/// scattered, so sparse inputs encode in O(set bits).
void encode_packed(std::span<const std::int32_t> input, const QuantConfig& q, int planes_pad,
                   std::uint64_t* ip) {
  const auto rows = static_cast<std::int64_t>(input.size());
  const std::int64_t words = (rows + 63) >> 6;
  std::fill(ip, ip + words * planes_pad, std::uint64_t{0});
  const std::uint64_t mask = (std::uint64_t{1} << q.abits) - 1;
  for (std::int64_t r = 0; r < rows; ++r) {
    std::uint64_t u =
        static_cast<std::uint64_t>(
            static_cast<std::int64_t>(input[static_cast<std::size_t>(r)])) &
        mask;
    if (u == 0) continue;
    std::uint64_t* base = ip + (r >> 6) * planes_pad;
    const std::uint64_t row_bit = std::uint64_t{1} << (r & 63);
    do {
      base[std::countr_zero(u)] |= row_bit;
      u &= u - 1;
    } while (u != 0);
  }
}

/// Packed ideal-ADC kernel (also the exact-MVM path): per column one
/// lane_sums pass over all weight planes yields S_j = sum_u 2^u * L[j][u],
/// and out[c] = sum_j pw(j) * S_j - offset * input_sum, with pw(j) = -2^j on
/// the two's-complement MSB plane and +2^j otherwise.
void packed_ideal_kernel(const LogicalXbar& xbar, const EncodeSummary& sum, MvmWorkspace& ws,
                         std::int64_t* out, LaneSumsFn fn) {
  const std::int64_t cols = xbar.cols();
  const std::int64_t words = xbar.packed_words();
  const QuantConfig& q = xbar.config();
  const int planes_pad = padded_planes(q);
  const std::int64_t correction = std::int64_t{q.weight_offset()} * sum.input_sum;
  std::int64_t lanes[kMaxPlanesPad];
  for (std::int64_t c = 0; c < cols; ++c) {
    fn(ws.in_planes.data(), words, planes_pad, xbar.packed_col_planes(c),
       xbar.packed_weight_planes(), lanes);
    std::int64_t o = 0;
    for (int j = 0; j < q.abits; ++j) {
      const std::int64_t pw = (q.dac_bits == 1 && j == q.abits - 1) ? -(std::int64_t{1} << j)
                                                                    : (std::int64_t{1} << j);
      o += pw * lanes[j];
    }
    out[c] = o - correction;
  }
}

/// Packed clipped-ADC kernel: per (column, slice) one lane_sums pass over the
/// slice's cell_bits weight planes yields lane[s][j] = the slice-s column
/// current contribution of input bit-plane j; the DAC digits of each pulse
/// then recombine scalar-side (cur = sum_e lane[s][b*dac+e] << e), saturate
/// at the ADC ceiling with clip counting, and accumulate exactly like the
/// reference. Returns the number of saturated conversions.
std::int64_t packed_clipped_kernel(const LogicalXbar& xbar, const EncodeSummary& sum,
                                   MvmWorkspace& ws, std::int64_t* out, LaneSumsFn fn) {
  const std::int64_t cols = xbar.cols();
  const std::int64_t words = xbar.packed_words();
  const QuantConfig& q = xbar.config();
  const int slices = q.slices();
  const int cell_bits = q.cell_bits;
  const int num_pulses = q.pulses();
  const int planes_pad = padded_planes(q);
  const std::int64_t clip_max = (std::int64_t{1} << q.adc.bits) - 1;
  const std::int64_t correction = std::int64_t{q.weight_offset()} * sum.input_sum;
  std::int64_t lanes[kMaxSlices * kMaxPlanesPad];
  std::int64_t clips = 0;
  for (std::int64_t c = 0; c < cols; ++c) {
    const std::uint64_t* wcol = xbar.packed_col_planes(c);
    for (int s = 0; s < slices; ++s)
      fn(ws.in_planes.data(), words, planes_pad,
         wcol + static_cast<std::size_t>(s) * cell_bits * static_cast<std::size_t>(words),
         cell_bits, lanes + s * planes_pad);
    std::int64_t o = 0;
    for (int b = 0; b < num_pulses; ++b) {
      const std::int64_t pulse_weight = (q.dac_bits == 1 && b == q.abits - 1)
                                            ? -(std::int64_t{1} << b)
                                            : (std::int64_t{1} << (q.dac_bits * b));
      const int ebase = b * q.dac_bits;
      const int emax = std::min(q.dac_bits, q.abits - ebase);
      std::int64_t col_acc = 0;
      for (int s = 0; s < slices; ++s) {
        const std::int64_t* ls = lanes + s * planes_pad;
        std::int64_t cur = 0;
        for (int e = 0; e < emax; ++e) cur += ls[ebase + e] << e;
        if (cur > clip_max) {
          cur = clip_max;
          ++clips;
        }
        col_acc += cur << (cell_bits * s);
      }
      o += pulse_weight * col_acc;
    }
    out[c] = o - correction;
  }
  return clips;
}

// ---------------------------------------------------------------------------
// Runtime ISA selection.
// ---------------------------------------------------------------------------

MvmIsa detect_isa() {
#if RED_MVM_X86
  if (__builtin_cpu_supports("avx512vpopcntdq") && __builtin_cpu_supports("avx512vl"))
    return MvmIsa::kAvx512;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt")) return MvmIsa::kAvx2;
  if (__builtin_cpu_supports("popcnt")) return MvmIsa::kPopcnt;
#endif
  return MvmIsa::kPortable;
}

MvmIsa isa_from_name(const std::string& name) {
  for (const MvmIsa isa : {MvmIsa::kScalar, MvmIsa::kPortable, MvmIsa::kPopcnt, MvmIsa::kAvx2,
                           MvmIsa::kAvx512})
    if (name == mvm_isa_name(isa)) return isa;
  throw ConfigError("RED_MVM_ISA: unknown tier '" + name +
                    "' (scalar | portable | popcnt | avx2 | avx512)");
}

MvmIsa clamp_isa(MvmIsa isa) { return std::min(isa, detect_isa()); }

MvmIsa initial_isa() {
  const char* env = std::getenv("RED_MVM_ISA");
  if (env == nullptr || *env == '\0') return detect_isa();
  return clamp_isa(isa_from_name(env));
}

std::atomic<int>& active_isa_slot() {
  static std::atomic<int> slot{static_cast<int>(initial_isa())};
  return slot;
}

// ---------------------------------------------------------------------------

/// One bit-accurate MVM into `out` (cols() values). Assumes ws is prepared.
void bit_accurate_into(const LogicalXbar& xbar, std::span<const std::int32_t> input,
                       MvmWorkspace& ws, std::int64_t* out, MvmStats* stats, MvmIsa isa) {
  RED_EXPECTS_MSG(input.size() == static_cast<std::size_t>(xbar.rows()),
                  "input size mismatch");
  const QuantConfig& q = xbar.config();
  const EncodeSummary sum = summarize_input(input, q);

  std::int64_t clips = 0;
  if (isa == MvmIsa::kScalar) {
    if (q.adc.mode == AdcMode::kIdeal) {
      ideal_kernel(xbar, input, sum, ws, out);
    } else {
      encode_streams(input, q, ws.streams.data());
      clips = clipped_kernel(xbar, ws, sum.input_sum, out);
    }
  } else {
    const LaneSumsFn fn = lane_sums_fn(isa);
    encode_packed(input, q, padded_planes(q), ws.in_planes.data());
    if (q.adc.mode == AdcMode::kIdeal)
      packed_ideal_kernel(xbar, sum, ws, out, fn);
    else
      clips = packed_clipped_kernel(xbar, sum, ws, out, fn);
  }

  if (stats != nullptr) {
    stats->mvm_ops += 1;
    stats->row_drives += sum.drives;
    stats->mac_pulses += sum.pulse_rows * xbar.phys_cols();
    stats->conversions += xbar.phys_cols() * q.pulses();
    stats->adc_clips += clips;
  }
}

/// One exact MVM (ideal-ADC semantics regardless of the configured ADC) into
/// `out`. Assumes ws is prepared. The packed tiers reuse the ideal kernel —
/// with an ideal ADC the bit decomposition recombines to the exact integer
/// dot product, so the result is identical and the popcount path is faster
/// than the scalar row sweep.
void exact_into(const LogicalXbar& xbar, std::span<const std::int32_t> input, MvmWorkspace& ws,
                std::int64_t* out, MvmStats* stats, MvmIsa isa) {
  RED_EXPECTS_MSG(input.size() == static_cast<std::size_t>(xbar.rows()),
                  "input size mismatch");
  const std::int64_t rows = xbar.rows();
  const std::int64_t cols = xbar.cols();
  const QuantConfig& q = xbar.config();

  if (isa != MvmIsa::kScalar) {
    const EncodeSummary sum = summarize_input(input, q);
    encode_packed(input, q, padded_planes(q), ws.in_planes.data());
    packed_ideal_kernel(xbar, sum, ws, out, lane_sums_fn(isa));
    if (stats != nullptr) {
      stats->mvm_ops += 1;
      stats->row_drives += sum.drives;
      stats->mac_pulses += sum.pulse_rows * xbar.phys_cols();
      stats->conversions += xbar.phys_cols() * q.pulses();
    }
    return;
  }

  const std::int32_t* weights = xbar.stored_weights().data();
  std::fill(out, out + cols, std::int64_t{0});
  std::int64_t drives = 0;
  std::int64_t pulse_rows = 0;
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t in = input[static_cast<std::size_t>(r)];
    if (in == 0) continue;
    ++drives;
    pulse_rows += fast_pulse_count(static_cast<std::int32_t>(in), q);
    const std::int32_t* wrow = weights + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) out[c] += in * wrow[c];
  }
  if (stats != nullptr) {
    stats->mvm_ops += 1;
    stats->row_drives += drives;
    stats->mac_pulses += pulse_rows * xbar.phys_cols();
    stats->conversions += xbar.phys_cols() * q.pulses();
  }
}

/// Observe-only instrumentation of the public dispatch entry points (never
/// the inner kernels): per-ISA-tier invocation counters plus MvmStats deltas
/// rolled into `mvm.*` counters. Static names keep the enabled path
/// allocation-free; the disabled path is the metrics() load + one branch.
const char* mvm_invocation_counter(MvmIsa isa) {
  switch (isa) {
    case MvmIsa::kScalar:
      return "mvm.calls.scalar";
    case MvmIsa::kPortable:
      return "mvm.calls.portable";
    case MvmIsa::kPopcnt:
      return "mvm.calls.popcnt";
    case MvmIsa::kAvx2:
      return "mvm.calls.avx2";
    case MvmIsa::kAvx512:
      return "mvm.calls.avx512";
  }
  return "mvm.calls.unknown";
}

void record_mvm_call(telemetry::MetricsRegistry* m, MvmIsa isa, std::int64_t calls,
                     const MvmStats* stats, const MvmStats& before) {
  m->counter(mvm_invocation_counter(isa))->add(static_cast<std::uint64_t>(calls));
  if (stats == nullptr) return;
  const auto bump = [m](const char* name, std::int64_t delta) {
    if (delta > 0) m->counter(name)->add(static_cast<std::uint64_t>(delta));
  };
  bump("mvm.ops", stats->mvm_ops - before.mvm_ops);
  bump("mvm.row_drives", stats->row_drives - before.row_drives);
  bump("mvm.mac_pulses", stats->mac_pulses - before.mac_pulses);
  bump("mvm.conversions", stats->conversions - before.conversions);
  bump("mvm.adc_clips", stats->adc_clips - before.adc_clips);
}

}  // namespace

MvmIsa mvm_detected_isa() { return detect_isa(); }

MvmIsa mvm_active_isa() { return static_cast<MvmIsa>(active_isa_slot().load(std::memory_order_relaxed)); }

MvmIsa set_mvm_isa(MvmIsa isa) {
  const MvmIsa installed = clamp_isa(isa);
  active_isa_slot().store(static_cast<int>(installed), std::memory_order_relaxed);
  return installed;
}

const char* mvm_isa_name(MvmIsa isa) {
  switch (isa) {
    case MvmIsa::kScalar:
      return "scalar";
    case MvmIsa::kPortable:
      return "portable";
    case MvmIsa::kPopcnt:
      return "popcnt";
    case MvmIsa::kAvx2:
      return "avx2";
    case MvmIsa::kAvx512:
      return "avx512";
  }
  RED_EXPECTS_MSG(false, "unhandled MvmIsa");
  return "";
}

std::span<const std::int64_t> mvm_bit_accurate(const LogicalXbar& xbar,
                                               std::span<const std::int32_t> input,
                                               MvmWorkspace& ws, MvmStats* stats) {
  const MvmIsa isa = mvm_active_isa();
  auto* m = telemetry::metrics();
  const MvmStats before = (m != nullptr && stats != nullptr) ? *stats : MvmStats{};
  ws.prepare(xbar.rows(), xbar.cols(), xbar.config().pulses());
  if (isa != MvmIsa::kScalar) ws.prepare_packed(xbar.rows(), padded_planes(xbar.config()));
  bit_accurate_into(xbar, input, ws, ws.out.data(), stats, isa);
  if (m != nullptr) record_mvm_call(m, isa, 1, stats, before);
  return {ws.out.data(), static_cast<std::size_t>(xbar.cols())};
}

std::span<const std::int64_t> mvm_exact(const LogicalXbar& xbar,
                                        std::span<const std::int32_t> input, MvmWorkspace& ws,
                                        MvmStats* stats) {
  const MvmIsa isa = mvm_active_isa();
  auto* m = telemetry::metrics();
  const MvmStats before = (m != nullptr && stats != nullptr) ? *stats : MvmStats{};
  ws.prepare(xbar.rows(), xbar.cols(), xbar.config().pulses());
  if (isa != MvmIsa::kScalar) ws.prepare_packed(xbar.rows(), padded_planes(xbar.config()));
  exact_into(xbar, input, ws, ws.out.data(), stats, isa);
  if (m != nullptr) record_mvm_call(m, isa, 1, stats, before);
  return {ws.out.data(), static_cast<std::size_t>(xbar.cols())};
}

std::span<const std::int64_t> mvm_batch(const LogicalXbar& xbar,
                                        std::span<const std::int32_t> inputs, std::int64_t batch,
                                        bool bit_accurate, MvmWorkspace& ws, MvmStats* stats) {
  RED_EXPECTS(batch >= 0);
  RED_EXPECTS_MSG(inputs.size() == static_cast<std::size_t>(batch * xbar.rows()),
                  "batch input size mismatch");
  const MvmIsa isa = mvm_active_isa();
  auto* m = telemetry::metrics();
  const MvmStats before = (m != nullptr && stats != nullptr) ? *stats : MvmStats{};
  ws.prepare(xbar.rows(), xbar.cols(), xbar.config().pulses(), batch);
  if (isa != MvmIsa::kScalar) ws.prepare_packed(xbar.rows(), padded_planes(xbar.config()));
  const auto rows = static_cast<std::size_t>(xbar.rows());
  for (std::int64_t v = 0; v < batch; ++v) {
    const auto input = inputs.subspan(static_cast<std::size_t>(v) * rows, rows);
    std::int64_t* out = ws.out.data() + v * xbar.cols();
    if (bit_accurate)
      bit_accurate_into(xbar, input, ws, out, stats, isa);
    else
      exact_into(xbar, input, ws, out, stats, isa);
  }
  if (m != nullptr && batch > 0) record_mvm_call(m, isa, batch, stats, before);
  return {ws.out.data(), static_cast<std::size_t>(batch * xbar.cols())};
}

}  // namespace red::perf
