#include "red/perf/mvm_kernel.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "red/common/contracts.h"

namespace red::perf {

namespace {

using xbar::AdcMode;
using xbar::LogicalXbar;
using xbar::MvmStats;
using xbar::QuantConfig;

/// Wordline pulses transmitting `a` ('1' bits, or non-zero DAC digits).
/// Range-checked equivalent of xbar::pulse_count without the per-call
/// config validation and heap traffic.
int fast_pulse_count(std::int32_t a, const QuantConfig& q) {
  if (q.dac_bits == 1) {
    const std::int64_t half = std::int64_t{1} << (q.abits - 1);
    RED_EXPECTS_MSG(a >= -half && a < half, "activation outside abits signed range");
    const std::uint64_t u =
        static_cast<std::uint64_t>(a) & ((std::uint64_t{1} << q.abits) - 1);
    return std::popcount(u);
  }
  RED_EXPECTS_MSG(a >= 0, "multi-bit DAC streaming requires non-negative activations");
  RED_EXPECTS_MSG(a < (std::int64_t{1} << q.abits), "activation exceeds abits unsigned range");
  const int digit_max = (1 << q.dac_bits) - 1;
  int n = 0;
  std::int64_t u = a;
  for (int b = 0; b < q.pulses(); ++b) {
    n += (u & digit_max) != 0 ? 1 : 0;
    u >>= q.dac_bits;
  }
  return n;
}

struct EncodeSummary {
  std::int64_t input_sum = 0;
  std::int64_t drives = 0;      ///< rows with a non-zero input
  std::int64_t pulse_rows = 0;  ///< sum over rows of per-row pulse counts
};

/// Range-check the inputs and accumulate the activity summary shared by all
/// kernel variants (matching the reference's per-row accounting exactly).
EncodeSummary summarize_input(std::span<const std::int32_t> input, const QuantConfig& q) {
  EncodeSummary s;
  for (auto v : input) {
    s.input_sum += v;
    if (v == 0) {
      // Still range-check: the reference encodes zero rows too.
      (void)fast_pulse_count(v, q);
      continue;
    }
    ++s.drives;
    s.pulse_rows += fast_pulse_count(v, q);
  }
  return s;
}

/// Write the pulse-plane-major streams: streams[b * rows + r] = digit b of
/// input[r]. Inputs must already be range-checked (summarize_input).
void encode_streams(std::span<const std::int32_t> input, const QuantConfig& q,
                    std::uint8_t* streams) {
  const auto rows = static_cast<std::int64_t>(input.size());
  const int num_pulses = q.pulses();
  if (q.dac_bits == 1) {
    const std::uint64_t mask = (std::uint64_t{1} << q.abits) - 1;
    for (std::int64_t r = 0; r < rows; ++r) {
      const std::uint64_t u = static_cast<std::uint64_t>(input[static_cast<std::size_t>(r)]) &
                              mask;
      for (int b = 0; b < num_pulses; ++b)
        streams[static_cast<std::size_t>(b) * rows + r] =
            static_cast<std::uint8_t>((u >> b) & 1u);
    }
    return;
  }
  const int digit_max = (1 << q.dac_bits) - 1;
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int64_t u = input[static_cast<std::size_t>(r)];
    for (int b = 0; b < num_pulses; ++b) {
      streams[static_cast<std::size_t>(b) * rows + r] =
          static_cast<std::uint8_t>(u & digit_max);
      u >>= q.dac_bits;
    }
  }
}

/// Ideal-ADC bit-accurate MVM: with no clipping the pulse/slice decomposition
/// collapses algebraically, so one signed row-sweep per slice suffices:
/// out[c] = sum_s (sum_r in[r] * plane_s[r][c]) << (cell_bits * s) minus the
/// offset-encoding correction. Bit-exact vs the reference by construction.
void ideal_kernel(const LogicalXbar& xbar, std::span<const std::int32_t> input,
                  const EncodeSummary& sum, MvmWorkspace& ws, std::int64_t* out) {
  const std::int64_t rows = xbar.rows();
  const std::int64_t cols = xbar.cols();
  const QuantConfig& q = xbar.config();
  const int slices = q.slices();

  std::int64_t* acc = ws.acc.data();
  std::int64_t* current = ws.current.data();
  std::fill(acc, acc + cols, std::int64_t{0});
  for (int s = 0; s < slices; ++s) {
    std::fill(current, current + cols, std::int64_t{0});
    const std::uint8_t* plane = xbar.level_plane(s);
    for (std::int64_t r = 0; r < rows; ++r) {
      const std::int64_t in = input[static_cast<std::size_t>(r)];
      if (in == 0) continue;
      const std::uint8_t* row = plane + r * cols;
      for (std::int64_t c = 0; c < cols; ++c) current[c] += in * row[c];
    }
    const int shift = q.cell_bits * s;
    for (std::int64_t c = 0; c < cols; ++c) acc[c] += current[c] << shift;
  }
  const std::int64_t correction = std::int64_t{q.weight_offset()} * sum.input_sum;
  for (std::int64_t c = 0; c < cols; ++c) out[c] = acc[c] - correction;
}

/// Clipped-ADC bit-accurate MVM: integrates every (pulse, slice) plane
/// through the saturating ADC exactly like the reference, but sweeps
/// contiguous level-plane rows over a per-pulse compacted driven-row list.
/// Returns the number of saturated conversions.
std::int64_t clipped_kernel(const LogicalXbar& xbar, MvmWorkspace& ws, std::int64_t input_sum,
                            std::int64_t* out) {
  const std::int64_t rows = xbar.rows();
  const std::int64_t cols = xbar.cols();
  const QuantConfig& q = xbar.config();
  const int slices = q.slices();
  const int num_pulses = q.pulses();
  const std::int64_t clip_max = (std::int64_t{1} << q.adc.bits) - 1;

  std::int64_t* acc = ws.acc.data();
  std::int64_t* current = ws.current.data();
  std::fill(out, out + cols, std::int64_t{0});
  std::int64_t clips = 0;
  for (int b = 0; b < num_pulses; ++b) {
    // Compact the driven wordlines of this pulse once, reused per slice.
    const std::uint8_t* sp = ws.streams.data() + static_cast<std::size_t>(b) * rows;
    std::int64_t nd = 0;
    for (std::int64_t r = 0; r < rows; ++r)
      if (sp[r] != 0) {
        ws.driven_rows[static_cast<std::size_t>(nd)] = static_cast<std::int32_t>(r);
        ws.driven_vals[static_cast<std::size_t>(nd)] = sp[r];
        ++nd;
      }
    // An undriven pulse integrates zero current on every column: no output
    // contribution and (since clip_max >= 1) no clips. Skip it.
    if (nd == 0) continue;

    // Bit-serial: the MSB plane carries the two's-complement negative weight.
    // Multi-bit DAC: digits are unsigned (non-negative activations only).
    const std::int64_t pulse_weight = (q.dac_bits == 1 && b == q.abits - 1)
                                          ? -(std::int64_t{1} << b)
                                          : (std::int64_t{1} << (q.dac_bits * b));
    std::fill(acc, acc + cols, std::int64_t{0});
    for (int s = 0; s < slices; ++s) {
      std::fill(current, current + cols, std::int64_t{0});
      const std::uint8_t* plane = xbar.level_plane(s);
      if (q.dac_bits == 1) {
        for (std::int64_t k = 0; k < nd; ++k) {
          const std::uint8_t* row = plane + std::int64_t{ws.driven_rows[static_cast<std::size_t>(k)]} * cols;
          for (std::int64_t c = 0; c < cols; ++c) current[c] += row[c];
        }
      } else {
        for (std::int64_t k = 0; k < nd; ++k) {
          const std::int64_t d = ws.driven_vals[static_cast<std::size_t>(k)];
          const std::uint8_t* row = plane + std::int64_t{ws.driven_rows[static_cast<std::size_t>(k)]} * cols;
          for (std::int64_t c = 0; c < cols; ++c) current[c] += d * row[c];
        }
      }
      const int shift = q.cell_bits * s;
      for (std::int64_t c = 0; c < cols; ++c) {
        std::int64_t cur = current[c];
        if (cur > clip_max) {
          cur = clip_max;
          ++clips;
        }
        acc[c] += cur << shift;
      }
    }
    for (std::int64_t c = 0; c < cols; ++c) out[c] += pulse_weight * acc[c];
  }
  const std::int64_t correction = std::int64_t{q.weight_offset()} * input_sum;
  for (std::int64_t c = 0; c < cols; ++c) out[c] -= correction;
  return clips;
}

/// One bit-accurate MVM into `out` (cols() values). Assumes ws is prepared.
void bit_accurate_into(const LogicalXbar& xbar, std::span<const std::int32_t> input,
                       MvmWorkspace& ws, std::int64_t* out, MvmStats* stats) {
  RED_EXPECTS_MSG(input.size() == static_cast<std::size_t>(xbar.rows()),
                  "input size mismatch");
  const QuantConfig& q = xbar.config();
  const EncodeSummary sum = summarize_input(input, q);

  std::int64_t clips = 0;
  if (q.adc.mode == AdcMode::kIdeal) {
    ideal_kernel(xbar, input, sum, ws, out);
  } else {
    encode_streams(input, q, ws.streams.data());
    clips = clipped_kernel(xbar, ws, sum.input_sum, out);
  }

  if (stats != nullptr) {
    stats->mvm_ops += 1;
    stats->row_drives += sum.drives;
    stats->mac_pulses += sum.pulse_rows * xbar.phys_cols();
    stats->conversions += xbar.phys_cols() * q.pulses();
    stats->adc_clips += clips;
  }
}

/// One exact MVM (ideal-ADC semantics) into `out`. Assumes ws is prepared.
void exact_into(const LogicalXbar& xbar, std::span<const std::int32_t> input, std::int64_t* out,
                MvmStats* stats) {
  RED_EXPECTS_MSG(input.size() == static_cast<std::size_t>(xbar.rows()),
                  "input size mismatch");
  const std::int64_t rows = xbar.rows();
  const std::int64_t cols = xbar.cols();
  const QuantConfig& q = xbar.config();
  const std::int32_t* weights = xbar.stored_weights().data();

  std::fill(out, out + cols, std::int64_t{0});
  std::int64_t drives = 0;
  std::int64_t pulse_rows = 0;
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t in = input[static_cast<std::size_t>(r)];
    if (in == 0) continue;
    ++drives;
    pulse_rows += fast_pulse_count(static_cast<std::int32_t>(in), q);
    const std::int32_t* wrow = weights + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) out[c] += in * wrow[c];
  }
  if (stats != nullptr) {
    stats->mvm_ops += 1;
    stats->row_drives += drives;
    stats->mac_pulses += pulse_rows * xbar.phys_cols();
    stats->conversions += xbar.phys_cols() * q.pulses();
  }
}

}  // namespace

std::span<const std::int64_t> mvm_bit_accurate(const LogicalXbar& xbar,
                                               std::span<const std::int32_t> input,
                                               MvmWorkspace& ws, MvmStats* stats) {
  ws.prepare(xbar.rows(), xbar.cols(), xbar.config().pulses());
  bit_accurate_into(xbar, input, ws, ws.out.data(), stats);
  return {ws.out.data(), static_cast<std::size_t>(xbar.cols())};
}

std::span<const std::int64_t> mvm_exact(const LogicalXbar& xbar,
                                        std::span<const std::int32_t> input, MvmWorkspace& ws,
                                        MvmStats* stats) {
  ws.prepare(xbar.rows(), xbar.cols(), xbar.config().pulses());
  exact_into(xbar, input, ws.out.data(), stats);
  return {ws.out.data(), static_cast<std::size_t>(xbar.cols())};
}

std::span<const std::int64_t> mvm_batch(const LogicalXbar& xbar,
                                        std::span<const std::int32_t> inputs, std::int64_t batch,
                                        bool bit_accurate, MvmWorkspace& ws, MvmStats* stats) {
  RED_EXPECTS(batch >= 0);
  RED_EXPECTS_MSG(inputs.size() == static_cast<std::size_t>(batch * xbar.rows()),
                  "batch input size mismatch");
  ws.prepare(xbar.rows(), xbar.cols(), xbar.config().pulses(), batch);
  const auto rows = static_cast<std::size_t>(xbar.rows());
  for (std::int64_t v = 0; v < batch; ++v) {
    const auto input = inputs.subspan(static_cast<std::size_t>(v) * rows, rows);
    std::int64_t* out = ws.out.data() + v * xbar.cols();
    if (bit_accurate)
      bit_accurate_into(xbar, input, ws, out, stats);
    else
      exact_into(xbar, input, out, stats);
  }
  return {ws.out.data(), static_cast<std::size_t>(batch * xbar.cols())};
}

}  // namespace red::perf
