#include "red/perf/analog_kernel.h"

#include <algorithm>
#include <cmath>

#include "red/perf/thread_pool.h"

namespace red::perf {

namespace {

// Solve one line's tridiagonal system in place: sub/super-diagonal -g_wire,
// per-node diagonal diag[i], right-hand side rhs[i]. On return rhs holds the
// solution (diag is destroyed). The system is strictly diagonally dominant
// (diag exceeds the off-diagonal sum by at least g_cell), so the Thomas
// algorithm is stable without pivoting.
void thomas_line(std::int64_t n, double g_wire, double* diag, double* rhs) {
  double inv = 1.0 / diag[0];
  rhs[0] *= inv;            // dp[0]
  diag[0] = -g_wire * inv;  // cp[0]
  for (std::int64_t i = 1; i < n; ++i) {
    inv = 1.0 / (diag[i] + g_wire * diag[i - 1]);
    rhs[i] = (rhs[i] + g_wire * rhs[i - 1]) * inv;
    diag[i] = -g_wire * inv;
  }
  for (std::int64_t i = n - 2; i >= 0; --i) rhs[i] -= diag[i] * rhs[i + 1];
}

}  // namespace

xbar::AnalogResult solve_crossbar_read_fast(const std::vector<std::uint8_t>& levels,
                                            std::int64_t rows, std::int64_t cols, int max_level,
                                            const std::vector<std::uint8_t>& inputs,
                                            const xbar::AnalogConfig& cfg, AnalogWorkspace& ws,
                                            int threads) {
  cfg.validate();
  RED_EXPECTS(rows >= 1 && cols >= 1 && max_level >= 1);
  RED_EXPECTS(levels.size() == static_cast<std::size_t>(rows * cols));
  RED_EXPECTS(inputs.size() == static_cast<std::size_t>(rows));
  RED_EXPECTS(threads >= 1);

  const std::int64_t row_lanes = chunk_count(threads, rows);
  const std::int64_t col_lanes = chunk_count(threads, cols);
  ws.prepare(rows, cols, max_level, std::max(row_lanes, col_lanes));

  // Conductance lookup table: level -> g, computed once per call instead of
  // re-evaluating the linear map for every one of rows * cols cells.
  for (int l = 0; l <= max_level; ++l)
    ws.g_lut[static_cast<std::size_t>(l)] = cfg.level_conductance(l, max_level);

  xbar::AnalogResult result;
  result.ideal_current_a.assign(static_cast<std::size_t>(cols), 0.0);
  for (std::int64_t r = 0; r < rows; ++r) {
    if (inputs[static_cast<std::size_t>(r)] == 0) continue;
    const std::uint8_t* lrow = levels.data() + r * cols;
    for (std::int64_t c = 0; c < cols; ++c)
      result.ideal_current_a[static_cast<std::size_t>(c)] += cfg.v_read * ws.g_lut[lrow[c]];
  }

  if (cfg.r_wire_ohm == 0.0) {
    // No parasitics: the network degenerates to the ideal MVM.
    result.column_current_a = result.ideal_current_a;
    result.converged = true;
    return result;
  }

  const double g_wire = 1.0 / cfg.r_wire_ohm;
  double* g_cell = ws.g_cell.data();
  for (std::size_t i = 0; i < levels.size(); ++i) g_cell[i] = ws.g_lut[levels[i]];

  double* vw = ws.vw.data();
  double* vb = ws.vb.data();
  std::fill(vw, vw + rows * cols, 0.0);
  std::fill(vb, vb + rows * cols, 0.0);
  const std::int64_t line = std::max(rows, cols);

  int it = 0;
  for (; it < cfg.max_iterations; ++it) {
    // Row pass: solve every wordline chain exactly with the bitline plane
    // frozen. Node (r, c): g_cell coupling to vb(r, c), wire segments to the
    // row neighbours, and the drive source behind the c == 0 segment.
    std::fill(ws.lane_delta.begin(), ws.lane_delta.begin() + row_lanes, 0.0);
    parallel_chunks(row_lanes, rows, [&](std::int64_t lane, std::int64_t r0, std::int64_t r1) {
      double* diag = ws.thomas_c.data() + lane * line;
      double* rhs = ws.thomas_d.data() + lane * line;
      double local_delta = 0.0;
      for (std::int64_t r = r0; r < r1; ++r) {
        const double drive = inputs[static_cast<std::size_t>(r)] != 0 ? cfg.v_read : 0.0;
        const double* grow = g_cell + r * cols;
        const double* vbrow = vb + r * cols;
        double* vwrow = vw + r * cols;
        for (std::int64_t c = 0; c < cols; ++c) {
          diag[c] = grow[c] + g_wire + (c + 1 < cols ? g_wire : 0.0);
          rhs[c] = grow[c] * vbrow[c];
        }
        rhs[0] += g_wire * drive;
        thomas_line(cols, g_wire, diag, rhs);
        for (std::int64_t c = 0; c < cols; ++c) {
          local_delta = std::max(local_delta, std::abs(rhs[c] - vwrow[c]));
          vwrow[c] = rhs[c];
        }
      }
      ws.lane_delta[static_cast<std::size_t>(lane)] = local_delta;
    });
    double max_delta = 0.0;
    for (std::int64_t l = 0; l < row_lanes; ++l)
      max_delta = std::max(max_delta, ws.lane_delta[static_cast<std::size_t>(l)]);

    // Column pass: solve every bitline chain exactly with the wordline plane
    // frozen. Node (r, c): g_cell coupling to vw(r, c), wire segments to the
    // column neighbours, and the virtual-ground sense segment below the last
    // row (0 V, so it adds conductance but no right-hand-side term).
    std::fill(ws.lane_delta.begin(), ws.lane_delta.begin() + col_lanes, 0.0);
    parallel_chunks(col_lanes, cols, [&](std::int64_t lane, std::int64_t c0, std::int64_t c1) {
      double* diag = ws.thomas_c.data() + lane * line;
      double* rhs = ws.thomas_d.data() + lane * line;
      double local_delta = 0.0;
      for (std::int64_t c = c0; c < c1; ++c) {
        for (std::int64_t r = 0; r < rows; ++r) {
          const double g = g_cell[r * cols + c];
          diag[r] = g + (r > 0 ? g_wire : 0.0) + g_wire;
          rhs[r] = g * vw[r * cols + c];
        }
        thomas_line(rows, g_wire, diag, rhs);
        for (std::int64_t r = 0; r < rows; ++r) {
          local_delta = std::max(local_delta, std::abs(rhs[r] - vb[r * cols + c]));
          vb[r * cols + c] = rhs[r];
        }
      }
      ws.lane_delta[static_cast<std::size_t>(lane)] = local_delta;
    });
    for (std::int64_t l = 0; l < col_lanes; ++l)
      max_delta = std::max(max_delta, ws.lane_delta[static_cast<std::size_t>(l)]);

    if (max_delta < cfg.tolerance_v) {
      result.converged = true;
      break;
    }
  }
  // `it + 1` sweeps ran when the loop broke at convergence; exactly
  // max_iterations ran when it fell through without converging.
  result.iterations = result.converged ? it + 1 : cfg.max_iterations;

  result.column_current_a.assign(static_cast<std::size_t>(cols), 0.0);
  for (std::int64_t c = 0; c < cols; ++c)
    result.column_current_a[static_cast<std::size_t>(c)] = g_wire * vb[(rows - 1) * cols + c];
  return result;
}

}  // namespace red::perf
