// Layout-optimized bit-serial MVM kernels.
//
// These are the fast counterparts of LogicalXbar::mvm_bit_accurate()'s
// original column-major walk. They exploit the crossbar's plane-major level
// layout (one contiguous rows x cols matrix per weight slice) to turn the
// inner loop into contiguous row sweeps, and take an MvmWorkspace so a
// warmed-up call performs no heap allocation. Two regimes:
//
//  * ideal ADC — the pulse/slice decomposition is algebraically collapsible
//    (no clipping can occur), so the kernel reduces to one integer row-sweep
//    per slice: out[c] = sum_s (sum_r in[r] * plane_s[r][c]) << cell_bits*s.
//  * clipped ADC — every (pulse, slice) plane is integrated and clipped
//    exactly like the reference, but rows are pre-compacted into a driven-row
//    list per pulse and swept contiguously.
//
// Both are bit-exact against LogicalXbar::mvm_bit_accurate_reference() in
// outputs AND MvmStats (tests/fast_path_equivalence_test.cpp gates this).
#pragma once

#include <cstdint>
#include <span>

#include "red/perf/workspace.h"
#include "red/xbar/crossbar.h"

namespace red::perf {

/// Bit-accurate MVM through the configured ADC. Returns a span of cols()
/// results living in `ws.out` (invalidated by the next kernel call on `ws`).
std::span<const std::int64_t> mvm_bit_accurate(const xbar::LogicalXbar& xbar,
                                               std::span<const std::int32_t> input,
                                               MvmWorkspace& ws,
                                               xbar::MvmStats* stats = nullptr);

/// Exact integer MVM (ideal-ADC semantics; the workspace twin of
/// LogicalXbar::mvm). Returns a span of cols() results in `ws.out`.
std::span<const std::int64_t> mvm_exact(const xbar::LogicalXbar& xbar,
                                        std::span<const std::int32_t> input, MvmWorkspace& ws,
                                        xbar::MvmStats* stats = nullptr);

/// Batched MVM: `inputs` holds `batch` concatenated input vectors of
/// rows() elements each. Encoding setup and workspace buffers are amortized
/// across the batch. Returns batch * cols() results, vector-major, in
/// `ws.out`; stats accumulate exactly as `batch` single calls would.
std::span<const std::int64_t> mvm_batch(const xbar::LogicalXbar& xbar,
                                        std::span<const std::int32_t> inputs, std::int64_t batch,
                                        bool bit_accurate, MvmWorkspace& ws,
                                        xbar::MvmStats* stats = nullptr);

}  // namespace red::perf
