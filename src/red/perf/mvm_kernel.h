// Layout-optimized bit-serial MVM kernels.
//
// These are the fast counterparts of LogicalXbar::mvm_bit_accurate()'s
// original column-major walk. The primary path works on packed bit-planes:
// every stored-level bit of a column lives in LogicalXbar's packed weight
// planes (one 64-bit-word bitmap per level bit), the input's bit-planes are
// packed the same way into the workspace, and the per-(pulse, slice) analog
// integration collapses to popcount(input_plane & weight_plane) sums — wide
// enough to vectorize. Two regimes:
//
//  * ideal ADC — no clipping can occur, so the pulse/slice decomposition is
//    algebraically collapsible: out[c] = sum_j pw(j) * sum_u 2^u *
//    popcount(in_plane_j & w_plane_u[c]) minus the offset correction, where
//    pw(j) = ±2^j is the bit-j pulse weight.
//  * clipped ADC — per (column, slice) the cell_bits weight planes are
//    popcount-combined into per-input-plane lane sums; the per-pulse DAC
//    digits then recombine and saturate scalar-side, exactly like the
//    reference (clip counts included).
//
// The popcount inner loop dispatches at runtime over the CPU's ISA (see
// MvmIsa): a portable std::popcount build always exists, with POPCNT, AVX2,
// and AVX512-VPOPCNTDQ specializations selected by CPU detection, overridable
// via the RED_MVM_ISA environment variable or set_mvm_isa(). The original
// scalar kernels are kept selectable (MvmIsa::kScalar) as in-process
// equivalence oracles next to LogicalXbar::mvm_bit_accurate_reference().
//
// Every tier is bit-exact against the reference in outputs AND MvmStats
// (tests/fast_path_equivalence_test.cpp gates this).
#pragma once

#include <cstdint>
#include <span>

#include "red/perf/workspace.h"
#include "red/xbar/crossbar.h"

namespace red::perf {

/// Instruction-set tiers of the MVM inner loop, ordered weakest to
/// strongest. kScalar is the pre-packed scalar kernel pair (kept as an
/// equivalence oracle); the rest are the packed bit-plane kernel with
/// increasingly wide popcount implementations.
enum class MvmIsa : int {
  kScalar = 0,
  kPortable = 1,
  kPopcnt = 2,
  kAvx2 = 3,
  kAvx512 = 4,
};

/// Strongest tier this CPU supports (kPortable at minimum).
[[nodiscard]] MvmIsa mvm_detected_isa();

/// Tier the kernels currently dispatch to. Defaults to mvm_detected_isa(),
/// or to the RED_MVM_ISA environment variable (scalar | portable | popcnt |
/// avx2 | avx512, clamped to what the CPU supports) when set.
[[nodiscard]] MvmIsa mvm_active_isa();

/// Select the dispatch tier (tests/benchmarks). Requests above
/// mvm_detected_isa() clamp down; returns the tier actually installed.
MvmIsa set_mvm_isa(MvmIsa isa);

/// Lower-case tier name ("scalar", "portable", ...).
[[nodiscard]] const char* mvm_isa_name(MvmIsa isa);

/// Bit-accurate MVM through the configured ADC. Returns a span of cols()
/// results living in `ws.out` (invalidated by the next kernel call on `ws`).
std::span<const std::int64_t> mvm_bit_accurate(const xbar::LogicalXbar& xbar,
                                               std::span<const std::int32_t> input,
                                               MvmWorkspace& ws,
                                               xbar::MvmStats* stats = nullptr);

/// Exact integer MVM (ideal-ADC semantics; the workspace twin of
/// LogicalXbar::mvm). Returns a span of cols() results in `ws.out`.
std::span<const std::int64_t> mvm_exact(const xbar::LogicalXbar& xbar,
                                        std::span<const std::int32_t> input, MvmWorkspace& ws,
                                        xbar::MvmStats* stats = nullptr);

/// Batched MVM: `inputs` holds `batch` concatenated input vectors of
/// rows() elements each. Encoding setup and workspace buffers are amortized
/// across the batch. Returns batch * cols() results, vector-major, in
/// `ws.out`; stats accumulate exactly as `batch` single calls would.
std::span<const std::int64_t> mvm_batch(const xbar::LogicalXbar& xbar,
                                        std::span<const std::int32_t> inputs, std::int64_t batch,
                                        bool bit_accurate, MvmWorkspace& ws,
                                        xbar::MvmStats* stats = nullptr);

}  // namespace red::perf
