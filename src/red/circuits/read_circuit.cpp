#include "red/circuits/read_circuit.h"

#include "red/common/contracts.h"
#include "red/common/math_util.h"

namespace red::circuits {

ReadCircuit::ReadCircuit(std::int64_t cols, int mux_ratio, const tech::Calibration& cal)
    : cols_(cols), mux_ratio_(mux_ratio), cal_(cal) {
  RED_EXPECTS(cols >= 1 && mux_ratio >= 1);
}

std::int64_t ReadCircuit::units() const { return ceil_div(cols_, std::int64_t{mux_ratio_}); }

Nanoseconds ReadCircuit::latency() const { return Nanoseconds{cal_.t_conv * mux_ratio_}; }

Picojoules ReadCircuit::energy_per_conversion() const { return Picojoules{cal_.e_conv}; }

SquareMicrons ReadCircuit::area() const {
  return SquareMicrons{cal_.a_conv_unit * static_cast<double>(units())};
}

}  // namespace red::circuits
