#include "red/circuits/mux.h"

#include "red/common/contracts.h"
#include "red/common/math_util.h"

namespace red::circuits {

ColumnMux::ColumnMux(std::int64_t cols, int mux_ratio, const tech::Calibration& cal)
    : cols_(cols), mux_ratio_(mux_ratio), cal_(cal) {
  RED_EXPECTS(cols >= 1 && mux_ratio >= 1);
}

std::int64_t ColumnMux::groups() const { return ceil_div(cols_, std::int64_t{mux_ratio_}); }

Nanoseconds ColumnMux::latency() const { return Nanoseconds{cal_.t_mux}; }

Picojoules ColumnMux::energy_per_switch() const { return Picojoules{cal_.e_mux}; }

SquareMicrons ColumnMux::area() const {
  return SquareMicrons{cal_.a_mux_per_col * static_cast<double>(cols_)};
}

}  // namespace red::circuits
