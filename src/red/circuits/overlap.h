// Padding-free add-on circuitry: overlap accumulator and crop unit
// (steps c and d of Algorithm 2).
//
// These are exactly the "dedicated circuit support and extra area cost" the
// paper charges to the padding-free design on ReRAM (Sec. III-A). The
// accumulator merges each cycle's KH*KW*M patch values into a canvas buffer
// through a bank of time-shared adders; the writes serialize over the KH*KW
// patch positions, which is what caps the padding-free design's speedup on
// large FCN kernels.
#pragma once

#include <cstdint>

#include "red/common/units.h"
#include "red/tech/calibration.h"

namespace red::circuits {

class OverlapAccumulator {
 public:
  /// `patch_positions` = KH*KW, `cols_phys` = physical output columns
  /// (KH*KW*M*slices), `mux_ratio` shares adders like the read circuits.
  OverlapAccumulator(std::int64_t patch_positions, std::int64_t cols_phys, int mux_ratio,
                     const tech::Calibration& cal);

  [[nodiscard]] std::int64_t adder_units() const;
  [[nodiscard]] std::int64_t buffer_bits() const;

  /// Per-cycle latency: adder-tree stages + serialized canvas writes.
  [[nodiscard]] Nanoseconds latency() const;
  [[nodiscard]] Picojoules energy_per_add() const;
  [[nodiscard]] Picojoules energy_per_buffer_access() const;
  [[nodiscard]] SquareMicrons area() const;

 private:
  std::int64_t patch_positions_;
  std::int64_t cols_phys_;
  int mux_ratio_;
  tech::Calibration cal_;
};

class CropUnit {
 public:
  explicit CropUnit(const tech::Calibration& cal);
  [[nodiscard]] SquareMicrons area() const;

 private:
  tech::Calibration cal_;
};

}  // namespace red::circuits
