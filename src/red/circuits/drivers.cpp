#include "red/circuits/drivers.h"

#include "red/common/contracts.h"

namespace red::circuits {

WordlineDriver::WordlineDriver(std::int64_t rows, std::int64_t load_cols, int input_bits,
                               const tech::Calibration& cal)
    : rows_(rows), load_cols_(load_cols), input_bits_(input_bits), cal_(cal) {
  RED_EXPECTS(rows >= 1 && load_cols >= 1 && input_bits >= 1);
}

double WordlineDriver::upsize_factor() const {
  return 1.0 + static_cast<double>(load_cols_) / cal_.wd_upsize_cols;
}

Nanoseconds WordlineDriver::latency() const {
  const double cols = static_cast<double>(load_cols_);
  return Nanoseconds{cal_.t_wd_base + cal_.t_pulse_per_bit * input_bits_ +
                     cal_.t_wd_wire_col2 * cols * cols};
}

Picojoules WordlineDriver::energy_per_row_drive() const {
  const double cols = static_cast<double>(load_cols_);
  return Picojoules{cal_.e_wd_base + cal_.e_wd_per_col * cols * upsize_factor()};
}

SquareMicrons WordlineDriver::area() const {
  return SquareMicrons{cal_.a_wd_per_row * static_cast<double>(rows_) * upsize_factor()};
}

BitlineDriver::BitlineDriver(std::int64_t cols, std::int64_t load_rows,
                             const tech::Calibration& cal)
    : cols_(cols), load_rows_(load_rows), cal_(cal) {
  RED_EXPECTS(cols >= 1 && load_rows >= 1);
}

Nanoseconds BitlineDriver::latency() const {
  const double rows = static_cast<double>(load_rows_);
  return Nanoseconds{cal_.t_bd_base + cal_.t_bd_wire_row2 * rows * rows};
}

Picojoules BitlineDriver::energy_per_conversion() const {
  return Picojoules{cal_.e_bd_per_row * static_cast<double>(load_rows_)};
}

SquareMicrons BitlineDriver::area() const {
  return SquareMicrons{cal_.a_bd_per_col * static_cast<double>(cols_)};
}

}  // namespace red::circuits
