#include "red/circuits/overlap.h"

#include <cmath>

#include "red/common/contracts.h"
#include "red/common/math_util.h"

namespace red::circuits {

OverlapAccumulator::OverlapAccumulator(std::int64_t patch_positions, std::int64_t cols_phys,
                                       int mux_ratio, const tech::Calibration& cal)
    : patch_positions_(patch_positions), cols_phys_(cols_phys), mux_ratio_(mux_ratio), cal_(cal) {
  RED_EXPECTS(patch_positions >= 1 && cols_phys >= 1 && mux_ratio >= 1);
}

std::int64_t OverlapAccumulator::adder_units() const {
  // Adders are shared across the patch positions (serialized writes), so the
  // bank is sized by one position's physical column count.
  return ceil_div(cols_phys_ / std::max<std::int64_t>(patch_positions_, 1),
                  std::int64_t{mux_ratio_}) +
         1;
}

std::int64_t OverlapAccumulator::buffer_bits() const {
  return cols_phys_ * cal_.buf_bits_per_value;
}

Nanoseconds OverlapAccumulator::latency() const {
  const int tree_stages = ilog2_ceil(patch_positions_ + 1);
  return Nanoseconds{cal_.t_tree_stage * tree_stages +
                     cal_.t_buf_serial * static_cast<double>(patch_positions_) +
                     cal_.t_buf_access};
}

Picojoules OverlapAccumulator::energy_per_add() const { return Picojoules{cal_.e_add}; }

Picojoules OverlapAccumulator::energy_per_buffer_access() const { return Picojoules{cal_.e_buf}; }

SquareMicrons OverlapAccumulator::area() const {
  return SquareMicrons{cal_.a_add_unit * static_cast<double>(adder_units()) +
                       cal_.a_buf_per_bit * static_cast<double>(buffer_bits())};
}

CropUnit::CropUnit(const tech::Calibration& cal) : cal_(cal) {}

SquareMicrons CropUnit::area() const { return SquareMicrons{cal_.a_crop_unit}; }

}  // namespace red::circuits
