#include "red/circuits/buffer.h"

#include "red/common/contracts.h"

namespace red::circuits {

SramBuffer::SramBuffer(std::int64_t bits, const tech::Calibration& cal) : bits_(bits), cal_(cal) {
  RED_EXPECTS(bits >= 1);
}

Nanoseconds SramBuffer::access_latency() const { return Nanoseconds{cal_.t_buf_access}; }

Picojoules SramBuffer::energy_per_access() const { return Picojoules{cal_.e_buf}; }

SquareMicrons SramBuffer::area() const {
  return SquareMicrons{cal_.a_buf_per_bit * static_cast<double>(bits_)};
}

}  // namespace red::circuits
