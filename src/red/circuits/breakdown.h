// Table II breakdown components and their array/periphery grouping.
//
//   Array (a):      Computation (c), Wordline Driving (wd), Bitline Driving (bd)
//   Periphery (pp): Multiplexer (mux), Decoder (dec), Read Circuit (rc),
//                   Shift Adder (sa)
// kOther collects the padding-free design's add-on circuitry (overlap adders,
// accumulation buffer, crop unit); it belongs to the periphery group.
#pragma once

#include <array>
#include <string>

namespace red::circuits {

enum class Component {
  kComputation = 0,
  kWordlineDriving,
  kBitlineDriving,
  kDecoder,
  kMultiplexer,
  kReadCircuit,
  kShiftAdder,
  kOther,
};

inline constexpr int kNumComponents = 8;

[[nodiscard]] constexpr std::array<Component, kNumComponents> all_components() {
  return {Component::kComputation,  Component::kWordlineDriving, Component::kBitlineDriving,
          Component::kDecoder,      Component::kMultiplexer,     Component::kReadCircuit,
          Component::kShiftAdder,   Component::kOther};
}

/// Full name as in Table II, e.g. "Wordline Driving".
[[nodiscard]] std::string component_name(Component c);

/// Paper abbreviation, e.g. "wd".
[[nodiscard]] std::string component_abbrev(Component c);

/// True for the array group (c, wd, bd) of Table II.
[[nodiscard]] constexpr bool is_array_component(Component c) {
  return c == Component::kComputation || c == Component::kWordlineDriving ||
         c == Component::kBitlineDriving;
}

[[nodiscard]] constexpr int component_index(Component c) { return static_cast<int>(c); }

}  // namespace red::circuits
