#include "red/circuits/decoder.h"

#include "red/common/contracts.h"
#include "red/common/math_util.h"

namespace red::circuits {

RowDecoder::RowDecoder(std::int64_t rows, bool sub_crossbar, const tech::Calibration& cal)
    : rows_(rows), sub_crossbar_(sub_crossbar), cal_(cal) {
  RED_EXPECTS(rows >= 1);
}

Nanoseconds RowDecoder::latency() const {
  return Nanoseconds{cal_.t_dec_base + cal_.t_dec_per_bit * ilog2_ceil(rows_)};
}

Picojoules RowDecoder::energy_per_cycle() const {
  const double base = sub_crossbar_ ? cal_.e_dec_base : cal_.e_dec_base;
  return Picojoules{base + cal_.e_dec_per_row * static_cast<double>(rows_)};
}

SquareMicrons RowDecoder::area() const {
  const double base = sub_crossbar_ ? cal_.a_sc_base : cal_.a_dec_base;
  return SquareMicrons{base + cal_.a_dec_per_row * static_cast<double>(rows_)};
}

}  // namespace red::circuits
