#include "red/circuits/breakdown.h"

namespace red::circuits {

std::string component_name(Component c) {
  switch (c) {
    case Component::kComputation:
      return "Computation";
    case Component::kWordlineDriving:
      return "Wordline Driving";
    case Component::kBitlineDriving:
      return "Bitline Driving";
    case Component::kDecoder:
      return "Decoder";
    case Component::kMultiplexer:
      return "Multiplexer";
    case Component::kReadCircuit:
      return "Read Circuit / Integrate & Fire";
    case Component::kShiftAdder:
      return "Shift Adder";
    case Component::kOther:
      return "Add-on (overlap add / buffer / crop)";
  }
  return "?";
}

std::string component_abbrev(Component c) {
  switch (c) {
    case Component::kComputation:
      return "c";
    case Component::kWordlineDriving:
      return "wd";
    case Component::kBitlineDriving:
      return "bd";
    case Component::kDecoder:
      return "dec";
    case Component::kMultiplexer:
      return "mux";
    case Component::kReadCircuit:
      return "rc";
    case Component::kShiftAdder:
      return "sa";
    case Component::kOther:
      return "other";
  }
  return "?";
}

}  // namespace red::circuits
