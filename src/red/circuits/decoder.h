// Row decoder / input register model.
//
// Addresses `rows` wordlines: latency scales with address depth (log2 rows),
// energy with the rows whose input registers are clocked each cycle, area
// with the row count plus a fixed base. A macro split into sub-crossbars
// (RED) uses one small decoder per SC with a reduced base cost (the SC shares
// the bank-level control).
#pragma once

#include <cstdint>

#include "red/common/units.h"
#include "red/tech/calibration.h"

namespace red::circuits {

class RowDecoder {
 public:
  RowDecoder(std::int64_t rows, bool sub_crossbar, const tech::Calibration& cal);

  [[nodiscard]] std::int64_t rows() const { return rows_; }

  /// Decode latency per cycle.
  [[nodiscard]] Nanoseconds latency() const;
  /// Energy per cycle (base + per clocked row).
  [[nodiscard]] Picojoules energy_per_cycle() const;
  [[nodiscard]] SquareMicrons area() const;

 private:
  std::int64_t rows_;
  bool sub_crossbar_;
  tech::Calibration cal_;
};

}  // namespace red::circuits
