#include "red/circuits/interconnect.h"

#include "red/common/contracts.h"
#include "red/common/math_util.h"

namespace red::circuits {

HTree::HTree(std::int64_t nodes, double bank_edge_mm, const tech::Calibration& cal)
    : nodes_(nodes), bank_edge_mm_(bank_edge_mm), cal_(cal) {
  RED_EXPECTS(nodes >= 1);
  RED_EXPECTS(bank_edge_mm > 0.0);
}

int HTree::levels() const { return nodes_ <= 1 ? 0 : ilog2_ceil(nodes_); }

double HTree::path_mm() const {
  // Link lengths halve per level: edge/2 + edge/4 + ... (levels terms).
  double len = 0.0;
  double seg = bank_edge_mm_ / 2.0;
  for (int l = 0; l < levels(); ++l) {
    len += seg;
    seg /= 2.0;
  }
  return len;
}

double HTree::total_wire_mm() const {
  // Level l has 2^(l+1) links of length edge/2^(l+1).
  double total = 0.0;
  for (int l = 0; l < levels(); ++l) {
    const double links = static_cast<double>(std::int64_t{1} << (l + 1));
    total += links * (bank_edge_mm_ / static_cast<double>(std::int64_t{2} << l) / 2.0);
  }
  return total;
}

Nanoseconds HTree::latency_per_transfer() const {
  return Nanoseconds{cal_.htree_ns_per_mm * path_mm()};
}

Picojoules HTree::energy_per_bit() const {
  return Picojoules{cal_.htree_wire_pj_per_mm_bit * path_mm()};
}

SquareMicrons HTree::area() const {
  return SquareMicrons{cal_.htree_um2_per_mm_link * total_wire_mm()};
}

}  // namespace red::circuits
