// Read circuit: integrate-&-fire conversion of bitline currents to digits.
//
// One I&F unit per mux group; within a cycle each unit serially converts its
// `mux_ratio` columns (per input bit plane the counters integrate during the
// pulse, so only the final sampling is serialized).
#pragma once

#include <cstdint>

#include "red/common/units.h"
#include "red/tech/calibration.h"

namespace red::circuits {

class ReadCircuit {
 public:
  ReadCircuit(std::int64_t cols, int mux_ratio, const tech::Calibration& cal);

  [[nodiscard]] std::int64_t units() const;

  /// Per-cycle latency (mux_ratio serialized samplings).
  [[nodiscard]] Nanoseconds latency() const;
  [[nodiscard]] Picojoules energy_per_conversion() const;
  [[nodiscard]] SquareMicrons area() const;

 private:
  std::int64_t cols_;
  int mux_ratio_;
  tech::Calibration cal_;
};

}  // namespace red::circuits
