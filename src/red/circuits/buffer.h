// SRAM accumulation buffer model (used by the padding-free design's canvas).
#pragma once

#include <cstdint>

#include "red/common/units.h"
#include "red/tech/calibration.h"

namespace red::circuits {

class SramBuffer {
 public:
  SramBuffer(std::int64_t bits, const tech::Calibration& cal);

  [[nodiscard]] std::int64_t bits() const { return bits_; }
  [[nodiscard]] Nanoseconds access_latency() const;
  [[nodiscard]] Picojoules energy_per_access() const;
  [[nodiscard]] SquareMicrons area() const;

 private:
  std::int64_t bits_;
  tech::Calibration cal_;
};

}  // namespace red::circuits
