// Column multiplexer: shares one read circuit among `mux_ratio` bitlines.
#pragma once

#include <cstdint>

#include "red/common/units.h"
#include "red/tech/calibration.h"

namespace red::circuits {

class ColumnMux {
 public:
  ColumnMux(std::int64_t cols, int mux_ratio, const tech::Calibration& cal);

  [[nodiscard]] std::int64_t cols() const { return cols_; }
  [[nodiscard]] int mux_ratio() const { return mux_ratio_; }
  /// Number of read-circuit groups behind the mux.
  [[nodiscard]] std::int64_t groups() const;

  [[nodiscard]] Nanoseconds latency() const;
  [[nodiscard]] Picojoules energy_per_switch() const;
  [[nodiscard]] SquareMicrons area() const;

 private:
  std::int64_t cols_;
  int mux_ratio_;
  tech::Calibration cal_;
};

}  // namespace red::circuits
