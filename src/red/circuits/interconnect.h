// H-tree interconnect distributing inputs to subarrays and collecting
// outputs within a bank (the routing fabric implied by Fig. 1(c)).
//
// A binary H-tree over `nodes` leaves: levels = ceil(log2(nodes)); link
// length halves per level starting from half the bank edge. Costs scale per
// transported bit: energy per bit-mm, latency per mm of the root-to-leaf
// path, area per mm of total wiring.
#pragma once

#include <cstdint>

#include "red/common/units.h"
#include "red/tech/calibration.h"

namespace red::circuits {

class HTree {
 public:
  /// `nodes` leaves (subarrays), spread over a square bank of `bank_edge_mm`.
  HTree(std::int64_t nodes, double bank_edge_mm, const tech::Calibration& cal);

  [[nodiscard]] int levels() const;
  /// Root-to-leaf path length (mm).
  [[nodiscard]] double path_mm() const;
  /// Total wiring length over the whole tree (mm).
  [[nodiscard]] double total_wire_mm() const;

  [[nodiscard]] Nanoseconds latency_per_transfer() const;
  [[nodiscard]] Picojoules energy_per_bit() const;
  [[nodiscard]] SquareMicrons area() const;

 private:
  std::int64_t nodes_;
  double bank_edge_mm_;
  tech::Calibration cal_;
};

}  // namespace red::circuits
