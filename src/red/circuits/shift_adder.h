// Shift-adder: recombines weight bit-slices and input bit-planes, and (in
// RED) accumulates the vertically-summed sub-crossbar partials across folded
// cycles. `extra_stages` models the deeper accumulation tree RED needs when a
// computation-mode group stacks several sub-crossbars on one bitline.
#pragma once

#include <cstdint>

#include "red/common/units.h"
#include "red/tech/calibration.h"

namespace red::circuits {

class ShiftAdder {
 public:
  ShiftAdder(std::int64_t cols, int mux_ratio, int extra_stages, const tech::Calibration& cal);

  [[nodiscard]] std::int64_t units() const;
  [[nodiscard]] Nanoseconds latency() const;
  [[nodiscard]] Picojoules energy_per_op() const;
  [[nodiscard]] SquareMicrons area() const;

 private:
  std::int64_t cols_;
  int mux_ratio_;
  int extra_stages_;
  tech::Calibration cal_;
};

}  // namespace red::circuits
