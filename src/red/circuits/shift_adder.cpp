#include "red/circuits/shift_adder.h"

#include "red/common/contracts.h"
#include "red/common/math_util.h"

namespace red::circuits {

ShiftAdder::ShiftAdder(std::int64_t cols, int mux_ratio, int extra_stages,
                       const tech::Calibration& cal)
    : cols_(cols), mux_ratio_(mux_ratio), extra_stages_(extra_stages), cal_(cal) {
  RED_EXPECTS(cols >= 1 && mux_ratio >= 1 && extra_stages >= 0);
}

std::int64_t ShiftAdder::units() const { return ceil_div(cols_, std::int64_t{mux_ratio_}); }

Nanoseconds ShiftAdder::latency() const {
  return Nanoseconds{cal_.t_sa + cal_.t_sa_stage * extra_stages_};
}

Picojoules ShiftAdder::energy_per_op() const { return Picojoules{cal_.e_sa}; }

SquareMicrons ShiftAdder::area() const {
  return SquareMicrons{cal_.a_sa_unit * static_cast<double>(units())};
}

}  // namespace red::circuits
