// Wordline and bitline driver models.
//
// The wordline driver streams the bit-serial input pulses onto a line loaded
// by `load_cols` cells: its delay has a distributed-RC term quadratic in the
// line length and its per-drive energy grows superlinearly (wire CV^2 times a
// driver-upsizing factor). This is the mechanism behind the paper's
// observation that "the wordline/bitline driving power increases in a
// quadratic relation with the column number" (Sec. III-A), which penalizes
// the padding-free design's KH*KW*M-column output.
#pragma once

#include <cstdint>

#include "red/common/units.h"
#include "red/tech/calibration.h"

namespace red::circuits {

class WordlineDriver {
 public:
  WordlineDriver(std::int64_t rows, std::int64_t load_cols, int input_bits,
                 const tech::Calibration& cal);

  /// Per-cycle latency: turn-on + bit-serial pulse streaming + wire RC.
  [[nodiscard]] Nanoseconds latency() const;
  /// Energy for driving one row for one full input (all bit planes).
  [[nodiscard]] Picojoules energy_per_row_drive() const;
  [[nodiscard]] SquareMicrons area() const;

  [[nodiscard]] double upsize_factor() const;

 private:
  std::int64_t rows_;
  std::int64_t load_cols_;
  int input_bits_;
  tech::Calibration cal_;
};

class BitlineDriver {
 public:
  BitlineDriver(std::int64_t cols, std::int64_t load_rows, const tech::Calibration& cal);

  /// Per-cycle latency: precharge + wire RC along the (row-direction) line.
  [[nodiscard]] Nanoseconds latency() const;
  /// Energy per column conversion (precharging a line of `load_rows` cells).
  [[nodiscard]] Picojoules energy_per_conversion() const;
  [[nodiscard]] SquareMicrons area() const;

 private:
  std::int64_t cols_;
  std::int64_t load_rows_;
  tech::Calibration cal_;
};

}  // namespace red::circuits
