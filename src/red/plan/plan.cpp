#include "red/plan/plan.h"

#include <cstring>
#include <type_traits>
#include <utility>

#include "red/common/contracts.h"
#include "red/common/math_util.h"
#include "red/core/pixel_wise_mapping.h"
#include "red/core/schedule.h"
#include "red/nn/redundancy.h"

namespace red::plan {

namespace {

// Append a value's object representation to the key. Used for the numeric
// fields: exact (no decimal formatting loss) and cheap.
template <typename T>
void append_raw(std::string& key, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  key.append(bytes, sizeof(T));
}

// ---- visitor-driven structural key -----------------------------------------
// The key walks the visit_fields lists (common/visit_fields.h), so a config
// field that exists but is not keyed is impossible by construction: adding a
// field without extending its visitor fails the visitor's static_assert, and
// extending the visitor feeds the key (and the JSON round-trip) at once.

template <typename T>
void append_key_field(std::string& key, const T& v);

template <typename T>
void append_key_fields(std::string& key, const T& obj) {
  visit_fields(obj, [&key](const char*, const auto& v, common::FieldInfo info = {}) {
    // Execution-only fields (DesignConfig::threads, presentation names)
    // change scheduling or display, never results — the bit-identity
    // contract is what licenses sharing cache entries across them.
    if (info.structural) append_key_field(key, v);
  });
}

template <typename T>
void append_key_field(std::string& key, const T& v) {
  if constexpr (std::is_same_v<T, std::string>) {
    // Variable-width fields must be length-framed: an unframed string
    // between raw byte fields lets one key's bytes masquerade as another
    // key's following field bytes, silently aliasing distinct configs.
    append_raw(key, static_cast<std::uint64_t>(v.size()));
    key += v;
  } else if constexpr (std::is_enum_v<T>) {
    append_raw(key, static_cast<std::int64_t>(v));
  } else if constexpr (std::is_arithmetic_v<T>) {
    append_raw(key, v);
  } else if constexpr (std::is_same_v<T, tech::Calibration>) {
    // Field by field (the struct has padding, so a whole-object fingerprint
    // would split identical configs into distinct keys).
    tech::visit_calibration(v, [&key](const char*, const auto& c) { append_raw(key, c); });
  } else {
    append_key_fields(key, v);  // nested config struct: recurse its visitor
  }
}

// The one home of RED's fold rule (config override, else auto); both
// resolve_fold entry points and plan_layer go through it so the spec-driven
// and plan-driven paths can never diverge.
int resolved_fold(const arch::DesignConfig& cfg, const std::vector<core::ModeGroup>& groups) {
  if (cfg.red_fold > 0) return cfg.red_fold;
  return core::auto_fold(groups, cfg.red_max_subcrossbars);
}

const char* display_name(arch::DesignKind kind) {
  switch (kind) {
    case arch::DesignKind::kZeroPadding:
      return "zero-padding";
    case arch::DesignKind::kPaddingFree:
      return "padding-free";
    case arch::DesignKind::kRed:
      return "RED";
  }
  RED_EXPECTS_MSG(false, "unreachable design kind");
  return "";
}

// ---- per-design activity models (the paper's cycle/structure math) ---------
// These are the single home of the mapping arithmetic; Design::activity is a
// thin wrapper over plan_layer, so every consumer prices the same model.

arch::LayerActivity zero_padding_activity(const nn::DeconvLayerSpec& spec,
                                          const arch::DesignConfig& cfg) {
  const int slices = cfg.quant.slices();
  const int pulses = cfg.quant.pulses();

  arch::LayerActivity a;
  a.design_name = display_name(arch::DesignKind::kZeroPadding);
  a.total_rows = std::int64_t{spec.kh} * spec.kw * spec.c;
  a.out_phys_cols = std::int64_t{spec.m} * slices;
  a.macros = {arch::MacroShape{a.total_rows, a.out_phys_cols, 1}};
  a.cells = a.total_rows * a.out_phys_cols;
  a.dec_units = 1;
  a.dec_rows = a.total_rows;
  a.sc_units = 1;
  a.groups = 1;
  a.wl_load_cols = a.out_phys_cols;
  a.bl_load_rows = a.total_rows;
  a.bl_weighted_cols = a.out_phys_cols * a.total_rows;

  a.cycles = std::int64_t{spec.oh()} * spec.ow();
  a.row_drives = nn::structural_window_hits(spec) * spec.c;
  a.conversions = a.cycles * a.out_phys_cols * pulses;
  a.mux_switches = a.conversions;
  a.sa_ops = a.conversions;
  a.mac_pulses = static_cast<double>(a.row_drives) * pulses * cfg.calib.avg_bit_density *
                 static_cast<double>(a.out_phys_cols);
  return a;
}

arch::LayerActivity padding_free_activity(const nn::DeconvLayerSpec& spec,
                                          const arch::DesignConfig& cfg) {
  const int slices = cfg.quant.slices();
  const int pulses = cfg.quant.pulses();
  const std::int64_t patch = std::int64_t{spec.kh} * spec.kw;

  arch::LayerActivity a;
  a.design_name = display_name(arch::DesignKind::kPaddingFree);
  a.total_rows = spec.c;
  a.out_phys_cols = patch * spec.m * slices;
  a.macros = {arch::MacroShape{spec.c, a.out_phys_cols, 1}};
  a.cells = a.total_rows * a.out_phys_cols;
  a.dec_units = 1;
  a.dec_rows = spec.c;
  a.sc_units = 1;
  a.groups = 1;
  a.wl_load_cols = a.out_phys_cols;
  a.bl_load_rows = spec.c;
  a.bl_weighted_cols = a.out_phys_cols * a.total_rows;

  a.cycles = std::int64_t{spec.ih} * spec.iw;
  a.row_drives = a.cycles * spec.c;  // inputs are dense: every row, every cycle
  a.conversions = a.cycles * a.out_phys_cols * pulses;
  a.mux_switches = a.conversions;
  a.sa_ops = a.conversions;
  a.mac_pulses = static_cast<double>(a.row_drives) * pulses * cfg.calib.avg_bit_density *
                 static_cast<double>(a.out_phys_cols);

  a.patch_positions = patch;
  a.overlap_adds = a.cycles * patch * spec.m;
  a.buffer_accesses = 2 * a.overlap_adds;  // read-modify-write of the canvas
  a.has_crop = true;
  return a;
}

arch::LayerActivity red_activity(const nn::DeconvLayerSpec& spec, const arch::DesignConfig& cfg,
                                 const std::vector<core::ModeGroup>& groups, int fold) {
  const int slices = cfg.quant.slices();
  const int pulses = cfg.quant.pulses();
  const std::int64_t m_phys = std::int64_t{spec.m} * slices;

  arch::LayerActivity a;
  a.design_name = display_name(arch::DesignKind::kRed);
  a.total_rows = core::total_sub_crossbars(groups) * spec.c;  // == KH*KW*C
  a.out_phys_cols = static_cast<std::int64_t>(groups.size()) * m_phys;
  a.cells = a.total_rows * m_phys;  // every SC is C x M_phys
  a.dec_units = core::folded_sc_count(groups, fold);
  a.dec_rows = std::int64_t{fold} * spec.c;
  a.sub_crossbar_decoders = true;
  a.sc_units = a.dec_units;
  a.groups = static_cast<std::int64_t>(groups.size());
  a.wl_load_cols = m_phys;  // one wordline spans only its own sub-crossbar
  a.bl_load_rows = core::max_group_size(groups) * spec.c;  // tallest shared bitline
  a.bl_weighted_cols = 0;
  for (const auto& g : groups) {
    const std::int64_t group_rows = static_cast<std::int64_t>(g.scs.size()) * spec.c;
    a.bl_weighted_cols += m_phys * group_rows;
    a.macros.push_back(arch::MacroShape{group_rows, m_phys, 1});
  }
  a.split_macro = true;
  a.sa_extra_stages = ilog2_ceil(core::max_group_size(groups)) + (fold > 1 ? 1 : 0);
  a.fold = fold;

  // Bit-Tactical lookahead/lookaside coalesces fold phases into windows, so a
  // block takes coalesced_phases (== fold with the knobs off) cycles; the
  // conversion/mux/SA counts below inherit the shortened schedule because a
  // merged cycle integrates its promoted wordlines into one ADC conversion.
  a.cycles = std::int64_t{ceil_div(spec.oh(), spec.stride)} *
             ceil_div(spec.ow(), spec.stride) *
             core::ZeroSkipSchedule::coalesced_phases(fold, cfg.lookahead_h, cfg.lookaside_d);
  // Zero-skipping drives exactly the wordlines carrying real data — the same
  // (input pixel, kernel tap) pairings the zero-padding design's non-zero
  // window entries make, so the totals coincide by construction.
  a.row_drives = nn::structural_window_hits(spec) * spec.c;
  a.conversions = a.cycles * a.out_phys_cols * pulses;
  a.mux_switches = a.conversions;
  a.sa_ops = a.conversions;
  a.mac_pulses = static_cast<double>(a.row_drives) * pulses * cfg.calib.avg_bit_density *
                 static_cast<double>(m_phys);
  return a;
}

}  // namespace

std::string structural_key(arch::DesignKind kind, const arch::DesignConfig& cfg,
                           const nn::DeconvLayerSpec& spec) {
  std::string key;
  key.reserve(2 * sizeof(tech::Calibration));
  append_raw(key, static_cast<int>(kind));
  append_key_fields(key, cfg);   // every structural DesignConfig field
  append_key_fields(key, spec);  // layer geometry; the name is presentation-only
  return key;
}

std::string digest(const std::string& key) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64 offset basis
  for (const unsigned char ch : key) {
    h ^= ch;
    h *= 1099511628211ULL;  // FNV prime
  }
  static const char* hex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex[h & 0xF];
    h >>= 4;
  }
  return out;
}

std::string LayerPlan::fingerprint() const { return digest(key); }

std::string StackPlan::key() const {
  std::string k;
  append_raw(k, static_cast<std::uint64_t>(layers.size()));
  for (const auto& layer : layers) {
    append_raw(k, static_cast<std::uint64_t>(layer.key.size()));
    k += layer.key;
  }
  return k;
}

std::string StackPlan::fingerprint() const { return digest(key()); }

int resolve_fold(arch::DesignKind kind, const nn::DeconvLayerSpec& spec,
                 const arch::DesignConfig& cfg) {
  if (kind != arch::DesignKind::kRed) return 1;
  return resolved_fold(cfg, core::compute_mode_groups(spec));
}

LayerPlan plan_layer(arch::DesignKind kind, const nn::DeconvLayerSpec& spec,
                     const arch::DesignConfig& cfg) {
  spec.validate();
  cfg.validate();

  LayerPlan p;
  p.kind = kind;
  p.spec = spec;
  p.cfg = cfg;
  switch (kind) {
    case arch::DesignKind::kZeroPadding:
      p.layout = {std::int64_t{spec.kh} * spec.kw * spec.c, spec.m, 1};
      p.activity = zero_padding_activity(spec, cfg);
      break;
    case arch::DesignKind::kPaddingFree:
      p.layout = {spec.c, std::int64_t{spec.kh} * spec.kw * spec.m, 1};
      p.activity = padding_free_activity(spec, cfg);
      break;
    case arch::DesignKind::kRed:
      p.groups = core::compute_mode_groups(spec);
      p.fold = resolved_fold(cfg, p.groups);
      p.layout = {spec.c, spec.m, std::int64_t{spec.kh} * spec.kw};
      p.activity = red_activity(spec, cfg, p.groups, p.fold);
      break;
  }
  // Spare-line redundancy (fault.repair) costs real array area: each macro
  // grows by its spare wordlines x (cols + spare bitlines) plus spare
  // bitlines x rows. Priced into `cells` (the area term) so the optimizer
  // sees the redundancy <-> area tradeoff; the dynamic counts are untouched
  // because spares are idle until a repair consumes them.
  const auto& repair = cfg.fault.repair;
  if (repair.spare_rows > 0 || repair.spare_cols > 0) {
    const std::int64_t sr = repair.spare_rows;
    const std::int64_t sc = repair.spare_cols;
    for (const auto& m : p.activity.macros)
      p.activity.cells += m.count * (sr * (m.phys_cols + sc) + sc * m.rows);
  }
  p.tiles.reserve(p.activity.macros.size());
  for (const auto& m : p.activity.macros)
    p.tiles.push_back(xbar::plan_tiling(m.rows, m.phys_cols, cfg.tiling));
  p.key = structural_key(kind, cfg, spec);
  return p;
}

StackPlan plan_stack(arch::DesignKind kind, const std::vector<nn::DeconvLayerSpec>& stack,
                     const arch::DesignConfig& cfg) {
  StackPlan sp;
  sp.kind = kind;
  sp.cfg = cfg;
  sp.layers.reserve(stack.size());
  for (const auto& spec : stack) sp.layers.push_back(plan_layer(kind, spec, cfg));
  return sp;
}

}  // namespace red::plan
