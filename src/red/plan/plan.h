// The compile layer: an explicit mapping IR shared by every consumer.
//
// The paper's contribution is a *mapping* — pixel-wise kernel decomposition
// (Eq. 1), mode groups (Fig. 6), area-efficient folding (Eq. 2), and the
// zero-skipping schedule (Fig. 5(c)). Before this layer existed, those
// decisions were re-derived ad hoc inside each Design's activity()/run()/
// cost(), again by chip placement, and fingerprinted a third time by the
// sweep memo. plan_layer() compiles them ONCE into a LayerPlan that every
// consumer shares:
//
//   nn spec ──▶ plan_layer ──▶ LayerPlan ──▶ Design::activity/cost/program
//                                        ──▶ arch::plan_chip (bank placement)
//                                        ──▶ sim::simulate / StreamingExecutor
//                                        ──▶ explore::SweepDriver (memo key)
//                                        ──▶ report::to_json (cacheable artifact)
//
// A LayerPlan captures every decision made before data flows: the design
// kind, the resolved fold, the mode-group table, the sub-crossbar weight
// layout, the physical tile grid, the analytic cycle/activity model, and a
// stable structural fingerprint. Plans are immutable value types — cheap to
// copy, hash, serialize, and diff.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "red/arch/activity.h"
#include "red/arch/design.h"
#include "red/core/mode_groups.h"
#include "red/nn/layer.h"
#include "red/xbar/tiling.h"

namespace red::plan {

/// How the KHxKWxCxM kernel tensor is laid onto programmed crossbar blocks.
/// RED programs KH*KW sub-crossbar blocks of CxM (Eq. 1); the zero-padding
/// baseline one KH*KW*C x M macro; the padding-free design one C x KH*KW*M
/// macro. Dimensions are logical (weight-slice expansion is in the activity
/// model's phys_cols).
struct WeightLayout {
  std::int64_t block_rows = 0;  ///< logical rows of one programmed block
  std::int64_t block_cols = 0;  ///< logical columns of one programmed block
  std::int64_t blocks = 1;      ///< programmed blocks (RED: KH*KW sub-crossbars)

  friend bool operator==(const WeightLayout&, const WeightLayout&) = default;
};

/// Every mapping decision for one layer on one design, compiled before any
/// data flows. All fields are derived deterministically from (kind, spec,
/// cfg); `key` is an injective byte encoding of exactly that triple, so two
/// plans with equal keys are structurally identical.
struct LayerPlan {
  arch::DesignKind kind = arch::DesignKind::kRed;
  nn::DeconvLayerSpec spec;
  arch::DesignConfig cfg;

  int fold = 1;                         ///< resolved fold (config override or auto)
  std::vector<core::ModeGroup> groups;  ///< mode-group table (RED; empty otherwise)
  WeightLayout layout;                  ///< sub-crossbar tensor layout
  std::vector<xbar::TilePlan> tiles;    ///< physical tile grid per activity macro,
                                        ///< under cfg.tiling
  arch::LayerActivity activity;         ///< cycle/activity model

  /// Injective structural key: raw bytes of every result-relevant config and
  /// geometry field (== structural_key(kind, cfg, spec)). Memo keys must use
  /// this, not the digest — injectivity rules out cache collisions.
  std::string key;

  /// Stable printable digest of `key` (16 hex chars, FNV-1a 64). Equal keys
  /// give equal fingerprints; used for display, JSON, and diffing.
  [[nodiscard]] std::string fingerprint() const;
};

/// A whole deconvolution stack compiled under one design and config.
struct StackPlan {
  arch::DesignKind kind = arch::DesignKind::kRed;
  arch::DesignConfig cfg;
  std::vector<LayerPlan> layers;

  /// Injective key over the layer sequence (each layer key length-framed).
  [[nodiscard]] std::string key() const;
  /// Printable digest of key().
  [[nodiscard]] std::string fingerprint() const;
};

/// RED's fold factor for a layer: the config override, or the smallest
/// power of two keeping the folded sub-crossbar count under the threshold
/// (Sec. III-C). 1 for the other designs.
[[nodiscard]] int resolve_fold(arch::DesignKind kind, const nn::DeconvLayerSpec& spec,
                               const arch::DesignConfig& cfg);

/// Compile one layer: validate, resolve the fold, build the mode-group
/// table, the weight layout, the tile grid, the activity model, and the
/// structural key. This is the single front-end every consumer goes through.
[[nodiscard]] LayerPlan plan_layer(arch::DesignKind kind, const nn::DeconvLayerSpec& spec,
                                   const arch::DesignConfig& cfg);

/// Compile a whole stack (no chaining requirement — chip placement accepts
/// arbitrary layer sets; streaming validates chaining itself).
[[nodiscard]] StackPlan plan_stack(arch::DesignKind kind,
                                   const std::vector<nn::DeconvLayerSpec>& stack,
                                   const arch::DesignConfig& cfg);

/// The injective structural key of (kind, cfg, spec) without compiling a
/// full plan: design kind, every result-relevant DesignConfig field
/// (calibration and tech node included; `threads` excluded — results are
/// thread-invariant), and the layer geometry (name excluded). Numeric fields
/// are appended as fixed-width raw bytes and every variable-width field (the
/// tech node name) is length-prefixed, so no two distinct points share a key.
[[nodiscard]] std::string structural_key(arch::DesignKind kind, const arch::DesignConfig& cfg,
                                         const nn::DeconvLayerSpec& spec);

/// FNV-1a 64-bit digest of an arbitrary key, as 16 lowercase hex chars.
[[nodiscard]] std::string digest(const std::string& key);

}  // namespace red::plan
