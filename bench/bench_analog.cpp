// Analog fast-path benchmark: before/after timings of the IR-drop solver
// (reference point-SOR vs ADI line relaxation) and the noise-ablation sweep
// (per-seed design rebuild vs the Monte Carlo variation engine), emitted as
// BENCH_analog.json. Run through tools/run_bench.sh, or directly:
//
//   bench_analog [--quick] [--out BENCH_analog.json] [--side N]
//                [--trials N] [--threads N]
//
// --quick is the bench_smoke CTest configuration: one tiny iteration of
// everything, still exercising every code path.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "red/common/flags.h"
#include "red/common/rng.h"
#include "red/common/string_util.h"
#include "red/core/designs.h"
#include "red/nn/deconv_reference.h"
#include "red/perf/analog_kernel.h"
#include "red/report/json.h"
#include "red/sim/montecarlo.h"
#include "red/tensor/tensor_ops.h"
#include "red/workloads/generator.h"
#include "red/xbar/analog.h"

int main(int argc, char** argv) {
  using namespace red;
  using bench::Clock;
  using bench::Entry;
  using bench::ms_since;
  const Flags flags = Flags::parse(argc - 1, argv + 1);
  const bool quick = flags.get_bool("quick");
  const std::string out_path = flags.get_string("out", "BENCH_analog.json");
  const auto side = flags.get_int("side", quick ? 16 : 128);
  const int trials = static_cast<int>(flags.get_int("trials", quick ? 2 : 5));
  const int threads = static_cast<int>(flags.get_int("threads", 4));
  const int reps = quick ? 1 : 3;

  bench::print_header("Analog fast path: IR-drop solver and Monte Carlo noise sweep",
                      "perf extension — see docs/PERFORMANCE.md");
  std::vector<Entry> entries;

  // ---- IR-drop solve: reference SOR vs ADI, single- and multi-thread ------
  Rng rng(12);
  std::vector<std::uint8_t> levels(static_cast<std::size_t>(side * side));
  for (auto& l : levels) l = static_cast<std::uint8_t>(rng.uniform_int(0, 3));
  std::vector<std::uint8_t> inputs(static_cast<std::size_t>(side), 1);
  xbar::AnalogConfig acfg;
  acfg.r_wire_ohm = 1.0;
  const std::string dims = std::to_string(side) + "x" + std::to_string(side);

  double ref_ms = 0.0, fast_ms = 0.0, fast_mt_ms = 0.0, worst_disagree = 0.0;
  {
    xbar::AnalogResult ref, fast;
    perf::AnalogWorkspace ws;
    for (int i = 0; i < reps; ++i) {
      const auto t0 = Clock::now();
      ref = xbar::solve_crossbar_read(levels, side, side, 3, inputs, acfg);
      const double t_ms = ms_since(t0);
      ref_ms = i == 0 ? t_ms : std::min(ref_ms, t_ms);
    }
    entries.push_back({"BM_IrDropReferenceSor_" + dims, ref_ms, reps});

    for (int i = 0; i < reps; ++i) {
      const auto t0 = Clock::now();
      fast = perf::solve_crossbar_read_fast(levels, side, side, 3, inputs, acfg, ws, 1);
      const double t_ms = ms_since(t0);
      fast_ms = i == 0 ? t_ms : std::min(fast_ms, t_ms);
    }
    entries.push_back({"BM_IrDropAdiFast_" + dims, fast_ms, reps});

    for (int i = 0; i < reps; ++i) {
      const auto t0 = Clock::now();
      (void)perf::solve_crossbar_read_fast(levels, side, side, 3, inputs, acfg, ws, threads);
      const double t_ms = ms_since(t0);
      fast_mt_ms = i == 0 ? t_ms : std::min(fast_mt_ms, t_ms);
    }
    entries.push_back(
        {"BM_IrDropAdiFast_" + dims + "_t" + std::to_string(threads), fast_mt_ms, reps});

    for (std::size_t c = 0; c < ref.column_current_a.size(); ++c) {
      const double denom = std::abs(ref.column_current_a[c]);
      if (denom == 0.0) continue;
      worst_disagree = std::max(
          worst_disagree, std::abs(ref.column_current_a[c] - fast.column_current_a[c]) / denom);
    }
  }

  // ---- Noise ablation sweep: per-seed rebuild vs Monte Carlo engine -------
  const nn::DeconvLayerSpec spec{"noise_probe", 6, 6, 16, 8, 4, 4, 2, 1, 0};
  Rng drng(2024);
  const auto input = workloads::make_input(spec, drng, 1, 7);
  const auto kernel = workloads::make_kernel(spec, drng, -30, 30);
  const auto golden = nn::deconv_reference(spec, input, kernel);
  const std::vector<double> sigmas = quick ? std::vector<double>{0.4}
                                           : std::vector<double>{0.1, 0.2, 0.4, 0.8, 1.6};

  // Best-of-reps like the solve timings: the sweeps are milliseconds long,
  // so a single sample is at the mercy of scheduler noise.
  double before_ms = 0.0, after_ms = 0.0;
  {
    double sink = 0.0;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = Clock::now();
      for (double sigma : sigmas)
        for (int t = 0; t < trials; ++t) {
          arch::DesignConfig cfg;
          cfg.quant.variation.level_sigma = sigma;
          cfg.quant.variation.seed = 1 + static_cast<std::uint64_t>(t);
          sink += normalized_rmse(
              golden,
              core::make_design(core::DesignKind::kRed, cfg)->run(spec, input, kernel));
        }
      const double t_ms = ms_since(t0);
      before_ms = r == 0 ? t_ms : std::min(before_ms, t_ms);
    }
    entries.push_back({"BM_NoiseSweepPerSeedRebuild", before_ms, reps});

    std::vector<xbar::VariationModel> var_grid;
    for (double sigma : sigmas) {
      xbar::VariationModel var;
      var.level_sigma = sigma;
      var_grid.push_back(var);
    }
    sim::MonteCarloOptions opts;
    opts.trials = trials;
    opts.threads = threads;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = Clock::now();
      for (const auto& mc : sim::run_monte_carlo_grid(core::DesignKind::kRed, {}, var_grid,
                                                      spec, input, kernel, golden, opts))
        sink += mc.mean_nrmse();
      const double t_ms = ms_since(t0);
      after_ms = r == 0 ? t_ms : std::min(after_ms, t_ms);
    }
    entries.push_back(
        {"BM_NoiseSweepMonteCarlo_t" + std::to_string(threads), after_ms, reps});
    (void)sink;
  }

  const double ir_speedup = fast_ms > 0.0 ? ref_ms / fast_ms : 0.0;
  const double noise_speedup = after_ms > 0.0 ? before_ms / after_ms : 0.0;

  std::cout << "IR-drop solve " << dims << ": reference " << format_double(ref_ms, 3)
            << " ms, ADI " << format_double(fast_ms, 3) << " ms ("
            << format_speedup(ir_speedup) << " single-thread), " << threads << " threads "
            << format_double(fast_mt_ms, 3) << " ms; worst column disagreement "
            << format_percent(worst_disagree, 4) << "\n";
  std::cout << "Noise sweep (" << sigmas.size() << " sigmas x " << trials
            << " trials): per-seed rebuild " << format_double(before_ms, 1)
            << " ms, Monte Carlo engine " << format_double(after_ms, 1) << " ms ("
            << format_speedup(noise_speedup) << " at " << threads << " threads)\n";

  std::ostringstream out;
  out << "{\n  \"context\": {\"side\": " << side << ", \"trials\": " << trials
      << ", \"threads\": " << threads << ", \"quick\": " << (quick ? "true" : "false")
      << "},\n  \"benchmarks\": ";
  bench::write_benchmark_array(out, entries);
  out << ",\n  \"speedups\": {\"irdrop_single_thread\": " << report::json_number(ir_speedup)
      << ", \"noise_sweep\": " << report::json_number(noise_speedup)
      << "},\n  \"equivalence\": {\"irdrop_worst_column_disagreement\": "
      << report::json_number(worst_disagree) << "}\n}\n";
  if (!bench::write_report_file(out_path, out.str())) return 1;
  return 0;
}
