// Table I — benchmark layers and per-design cycle counts.
//
// Regenerates the paper's benchmark table and appends the structural cycle
// counts of the three designs (which drive every Fig. 7/8 ratio).
#include <iostream>

#include "bench_util.h"
#include "red/common/string_util.h"
#include "red/core/designs.h"
#include "red/core/red_design.h"
#include "red/report/figures.h"
#include "red/workloads/benchmarks.h"

int main() {
  using namespace red;
  bench::print_header("Table I: benchmarks used in this work",
                      "RED (DATE 2019), Table I");
  const auto specs = workloads::table1_benchmarks();
  std::cout << report::table1(specs).to_ascii();

  bench::print_section("cycle-count ratios (zero-padding / RED)");
  const arch::DesignConfig cfg;
  for (const auto& s : specs) {
    const auto zp = core::make_design(core::DesignKind::kZeroPadding, cfg)->activity(s);
    const auto red = core::make_design(core::DesignKind::kRed, cfg)->activity(s);
    std::cout << s.name << ": " << zp.cycles << " / " << red.cycles << " = "
              << format_double(static_cast<double>(zp.cycles) / static_cast<double>(red.cycles),
                               2)
              << "x (stride^2/fold = "
              << s.stride * s.stride / core::RedDesign(cfg).fold_for(s) << "x ideal)\n";
  }
  return 0;
}
