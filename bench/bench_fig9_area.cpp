// Fig. 9 — area breakdown (array vs periphery), normalized to zero-padding.
//
// Paper: identical array area across designs; padding-free +9.79% (GANs) /
// +116.57% (FCN_Deconv2); RED ~+21.41% across layers.
#include <iostream>

#include "bench_util.h"
#include "red/common/string_util.h"
#include "red/report/evaluation.h"
#include "red/report/figures.h"
#include "red/workloads/benchmarks.h"

int main() {
  using namespace red;
  bench::print_header("Fig. 9: area comparison",
                      "PF +9.79% (GAN) / +116.57% (FCN2); RED ~+21.41%");
  // The paper plots GAN_Deconv1 and FCN_Deconv2; we print all six.
  const auto cmps = report::compare_layers(workloads::table1_benchmarks());
  std::cout << report::fig9_area(cmps).to_ascii();

  bench::print_section("overhead vs zero-padding");
  for (const auto& c : cmps) {
    std::cout << c.spec.name << ": padding-free "
              << format_percent(c.pf_area_overhead_vs_zp(), 2) << ", RED "
              << format_percent(c.red_area_overhead_vs_zp(), 2) << '\n';
  }

  bench::print_section("paper anchor check (the two plotted layers)");
  for (const auto& c : cmps) {
    if (c.spec.name == "GAN_Deconv1")
      std::cout << "GAN_Deconv1: PF " << format_percent(c.pf_area_overhead_vs_zp(), 2)
                << " (paper +9.79%), RED " << format_percent(c.red_area_overhead_vs_zp(), 2)
                << " (paper +21.41%)\n";
    if (c.spec.name == "FCN_Deconv2")
      std::cout << "FCN_Deconv2: PF " << format_percent(c.pf_area_overhead_vs_zp(), 2)
                << " (paper +116.57%), RED " << format_percent(c.red_area_overhead_vs_zp(), 2)
                << " (paper ~+21%)\n";
  }
  return 0;
}
