// Ablation — periphery sensitivity: column-mux ratio and technology node.
//
// The mux ratio trades read-circuit area against serialized conversion
// latency; the node sweep shows the ratios (RED's speedup/saving) are stable
// across technology scaling, as expected for a normalized comparison.
#include <iostream>

#include "bench_util.h"
#include "red/common/string_util.h"
#include "red/common/table.h"
#include "red/core/designs.h"
#include "red/report/evaluation.h"
#include "red/workloads/benchmarks.h"

int main() {
  using namespace red;
  bench::print_header("Ablation: mux ratio and technology node",
                      "design-space sensitivity of the Fig. 7/8/9 ratios");

  bench::print_section("mux ratio sweep (GAN_Deconv3)");
  {
    TextTable t({"mux", "RED speedup", "RED energy saving", "RED area overhead",
                 "RED latency (us)"});
    for (int mux : {2, 4, 8, 16, 32}) {
      arch::DesignConfig cfg;
      cfg.mux_ratio = mux;
      const auto c = report::compare_layer(workloads::gan_deconv3(), cfg);
      t.add_row({std::to_string(mux), format_speedup(c.red_speedup_vs_zp()),
                 format_percent(c.red_energy_saving_vs_zp(), 1),
                 format_percent(c.red_area_overhead_vs_zp(), 1),
                 format_double(c.red.total_latency().value() / 1e3, 3)});
    }
    std::cout << t.to_ascii();
  }

  bench::print_section("technology node sweep (GAN_Deconv1)");
  {
    TextTable t({"node", "RED speedup", "RED energy saving", "RED area (mm^2)",
                 "ZP area (mm^2)"});
    for (const auto& node :
         {tech::TechNode::node65(), tech::TechNode::node45(), tech::TechNode::node32()}) {
      arch::DesignConfig cfg;
      cfg.node = node;
      const auto c = report::compare_layer(workloads::gan_deconv1(), cfg);
      t.add_row({node.name, format_speedup(c.red_speedup_vs_zp()),
                 format_percent(c.red_energy_saving_vs_zp(), 1),
                 format_double(c.red.total_area().value() / 1e6, 3),
                 format_double(c.zero_padding.total_area().value() / 1e6, 3)});
    }
    std::cout << t.to_ascii();
  }

  bench::print_section("activation precision sweep (GAN_Deconv3)");
  {
    TextTable t({"abits", "RED speedup", "RED energy saving"});
    for (int abits : {4, 6, 8, 12}) {
      arch::DesignConfig cfg;
      cfg.quant.abits = abits;
      const auto c = report::compare_layer(workloads::gan_deconv3(), cfg);
      t.add_row({std::to_string(abits), format_speedup(c.red_speedup_vs_zp()),
                 format_percent(c.red_energy_saving_vs_zp(), 1)});
    }
    std::cout << t.to_ascii();
  }

  bench::print_section("input DAC resolution sweep (GAN_Deconv3, post-ReLU data)");
  {
    TextTable t({"dac bits", "pulses/MVM", "RED latency (us)", "RED energy (uJ)"});
    for (int dac : {1, 2, 4, 8}) {
      arch::DesignConfig cfg;
      cfg.quant.dac_bits = dac;
      const auto cost = core::make_design(core::DesignKind::kRed, cfg)
                            ->cost(workloads::gan_deconv3());
      t.add_row({std::to_string(dac), std::to_string(cfg.quant.pulses()),
                 format_double(cost.total_latency().value() / 1e3, 3),
                 format_double(cost.total_energy().value() / 1e6, 4)});
    }
    std::cout << t.to_ascii();
  }

  bench::print_section("activation sparsity sweep (GAN_Deconv1)");
  {
    TextTable t({"sparsity", "ZP energy (uJ)", "RED energy (uJ)", "RED saving"});
    for (double s : {0.0, 0.25, 0.5, 0.75}) {
      arch::DesignConfig cfg;
      cfg.activation_sparsity = s;
      const auto c = report::compare_layer(workloads::gan_deconv1(), cfg);
      t.add_row({format_percent(s, 0),
                 format_double(c.zero_padding.total_energy().value() / 1e6, 4),
                 format_double(c.red.total_energy().value() / 1e6, 4),
                 format_percent(c.red_energy_saving_vs_zp(), 1)});
    }
    std::cout << t.to_ascii();
  }

  bench::print_section("intra-layer pipelining (Eq. 3 bound vs 2-stage overlap)");
  {
    TextTable t({"Layer", "RED Eq.3 (us)", "RED pipelined (us)", "speedup vs ZP pipelined"});
    for (const auto& spec : workloads::table1_benchmarks()) {
      arch::DesignConfig cfg;
      const auto zp = core::make_design(core::DesignKind::kZeroPadding, cfg)->cost(spec);
      const auto red = core::make_design(core::DesignKind::kRed, cfg)->cost(spec);
      t.add_row({spec.name, format_double(red.total_latency().value() / 1e3, 2),
                 format_double(red.pipelined_latency().value() / 1e3, 2),
                 format_speedup(zp.pipelined_latency() / red.pipelined_latency())});
    }
    std::cout << t.to_ascii();
  }
  return 0;
}
