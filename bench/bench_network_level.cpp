// Network-level evaluation (beyond the paper's per-layer tables): whole
// generator / up-sampling stacks per design — sequential latency, pipelined
// throughput, energy per image, and chip-fit under a Fig. 1(c)-style chip.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "red/arch/chip.h"
#include "red/arch/programming.h"
#include "red/common/flags.h"
#include "red/common/rng.h"
#include "red/sim/balance.h"
#include "red/sim/engine.h"
#include "red/common/string_util.h"
#include "red/common/table.h"
#include "red/core/designs.h"
#include "red/sim/pipeline.h"
#include "red/workloads/generator.h"
#include "red/workloads/networks.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace red;
  const Flags flags = Flags::parse(argc - 1, argv + 1);
  // --smoke: one tiny functional iteration (the CTest bench_smoke label);
  // --threads N: worker lanes for the functional simulation section.
  const bool smoke = flags.get_bool("smoke");
  const int threads = static_cast<int>(flags.get_int("threads", 4));
  if (threads < 1) {
    red::log_error("--threads must be >= 1");
    return 2;
  }
  // Size the process-wide pool to the requested lane count (unless the user
  // pinned RED_THREADS), so the "N threads" column measures what it says.
  setenv("RED_THREADS", std::to_string(threads).c_str(), /*overwrite=*/0);
  bench::print_header("Network-level evaluation",
                      "extension — full deconv stacks + chip planning (Fig. 1(c))");

  struct Net {
    const char* name;
    std::vector<nn::DeconvLayerSpec> stack;
  };
  const std::vector<Net> nets{{"DCGAN generator", workloads::dcgan_generator()},
                              {"SNGAN generator", workloads::sngan_generator()},
                              {"FCN-8s upsampling", workloads::fcn8s_upsampling()}};
  const std::vector<core::DesignKind> kinds{core::DesignKind::kZeroPadding,
                                            core::DesignKind::kPaddingFree,
                                            core::DesignKind::kRed};

  for (const auto& net : nets) {
    bench::print_section(net.name);
    TextTable t({"design", "seq latency (us)", "interval (us)", "throughput (img/s)",
                 "energy/img (uJ)", "buffers (KiB)"});
    double zp_seq = 0;
    for (auto kind : kinds) {
      const auto r = sim::evaluate_pipeline(kind, net.stack);
      if (kind == core::DesignKind::kZeroPadding) zp_seq = r.sequential_latency.value();
      t.add_row({r.design_name, format_double(r.sequential_latency.value() / 1e3, 2),
                 format_double(r.initiation_interval.value() / 1e3, 2),
                 format_double(r.throughput_img_per_s(), 0),
                 format_double(r.energy_per_image.value() / 1e6, 3),
                 format_double(static_cast<double>(r.buffer_bits) / 8192.0, 1)});
    }
    std::cout << t.to_ascii();
    const auto red = sim::evaluate_pipeline(core::DesignKind::kRed, net.stack);
    std::cout << "RED network speedup vs zero-padding: "
              << format_speedup(zp_seq / red.sequential_latency.value()) << "\n";
  }

  bench::print_section("functional network simulation (thread scaling)");
  {
    // Real tensor execution through every design (reduced channel counts so
    // the bit-exact functional path finishes quickly), serial vs threaded.
    // Threaded runs reuse the serial outputs as the equivalence oracle.
    const int channel_div = smoke ? 64 : 8;
    const std::vector<Net> fnets{{"DCGAN generator", workloads::dcgan_generator(channel_div)},
                                 {"SNGAN generator", workloads::sngan_generator(channel_div)}};
    TextTable t({"network", "design", "serial (ms)", std::to_string(threads) + " threads (ms)",
                 "scaling", "bit-exact?"});
    for (const auto& net : fnets) {
      Rng rng(42);
      std::vector<Tensor<std::int32_t>> inputs, kernels;
      for (const auto& layer : net.stack) {
        inputs.push_back(workloads::make_input(layer, rng, 1, 7));
        kernels.push_back(workloads::make_kernel(layer, rng, -7, 7));
      }
      for (auto kind : kinds) {
        arch::DesignConfig serial_cfg;
        const auto serial_design = core::make_design(kind, serial_cfg);
        auto t0 = std::chrono::steady_clock::now();
        const auto serial = sim::simulate_network(*serial_design, net.stack, inputs, kernels,
                                                  /*check=*/true, 1);
        const double serial_s = seconds_since(t0);

        arch::DesignConfig par_cfg;
        par_cfg.threads = threads;
        const auto par_design = core::make_design(kind, par_cfg);
        t0 = std::chrono::steady_clock::now();
        const auto parallel = sim::simulate_network(*par_design, net.stack, inputs, kernels,
                                                    /*check=*/true, threads);
        const double par_s = seconds_since(t0);

        bool exact = parallel.total == serial.total;
        for (std::size_t i = 0; exact && i < serial.layers.size(); ++i)
          exact = parallel.layers[i].output == serial.layers[i].output;
        t.add_row({net.name, serial.layers.front().predicted.design_name,
                   format_double(serial_s * 1e3, 1), format_double(par_s * 1e3, 1),
                   format_speedup(par_s > 0 ? serial_s / par_s : 1.0),
                   exact ? "yes" : "NO"});
      }
    }
    std::cout << t.to_ascii();
  }
  if (smoke) return 0;

  bench::print_section("one-time weight programming (write-and-verify)");
  {
    TextTable t({"network", "design", "program latency (us)", "program energy (uJ)",
                 "break-even images"});
    for (const auto& net : nets)
      for (auto kind : kinds) {
        const auto design = core::make_design(kind);
        double latency = 0, energy = 0;
        for (const auto& layer : net.stack) {
          const auto p = arch::programming_cost(design->activity(layer), design->config());
          latency = std::max(latency, p.latency.value());  // layers program in parallel
          energy += p.energy.value();
        }
        const auto r = sim::evaluate_pipeline(kind, net.stack);
        const auto break_even = static_cast<std::int64_t>(
            std::ceil(energy / r.energy_per_image.value()));
        t.add_row({net.name, design->name(), format_double(latency / 1e3, 1),
                   format_double(energy / 1e6, 2), std::to_string(break_even)});
      }
    std::cout << t.to_ascii();
  }

  bench::print_section("pipeline balancing by weight duplication (PipeLayer-style)");
  {
    arch::ChipConfig chip;
    chip.banks = 8;
    chip.subarrays_per_bank = 512;
    TextTable t({"network", "design", "interval before (us)", "interval after (us)",
                 "balance speedup", "subarrays used"});
    for (const auto& net : nets)
      for (auto kind : kinds) {
        const auto r = sim::balance_pipeline(kind, net.stack, chip, chip.total_subarrays());
        t.add_row({net.name, core::make_design(kind)->name(),
                   format_double(r.interval_before.value() / 1e3, 2),
                   format_double(r.interval_after.value() / 1e3, 2),
                   format_speedup(r.speedup()), std::to_string(r.subarrays_used)});
      }
    std::cout << t.to_ascii();
  }

  bench::print_section("chip planning (8 banks x 512 subarrays of 128x128)");
  {
    arch::ChipConfig chip;
    chip.banks = 8;
    chip.subarrays_per_bank = 512;
    TextTable t({"network", "design", "subarrays", "fits?", "occupancy", "cell util",
                 "chip area (mm^2)"});
    for (const auto& net : nets)
      for (auto kind : kinds) {
        const auto design = core::make_design(kind);
        const auto plan = arch::plan_chip(*design, net.stack, chip);
        t.add_row({net.name, design->name(), std::to_string(plan.required_subarrays),
                   plan.fits ? "yes" : "NO", format_percent(plan.occupancy(), 1),
                   format_percent(plan.cell_utilization(), 1),
                   format_double(plan.chip_area.value() / 1e6, 2)});
      }
    std::cout << t.to_ascii();
  }
  return 0;
} catch (const std::exception& e) {
  red::log_error(e.what());
  return 2;
}
