// Fig. 8 — energy: (a) saving vs zero-padding, (b) array/periphery breakdown.
//
// Paper: RED saves 8%~88.36% energy vs zero-padding; the padding-free array
// energy is 4.48~7.53x the other two; padding-free consumes up to 6.68x more
// total energy on GANs.
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "red/common/string_util.h"
#include "red/report/evaluation.h"
#include "red/report/figures.h"
#include "red/workloads/benchmarks.h"

int main() {
  using namespace red;
  bench::print_header("Fig. 8: energy comparison",
                      "RED saves 8%~88.36%; PF array energy 4.48~7.53x");
  const auto cmps = report::compare_layers(workloads::table1_benchmarks());

  bench::print_section("(a) energy saving vs the zero-padding design");
  std::cout << report::fig8a_energy_saving(cmps).to_ascii();

  bench::print_section("(b) energy breakdown (normalized to zero-padding = 100%)");
  std::cout << report::fig8b_energy_breakdown(cmps).to_ascii();

  bench::print_section("paper-band summary");
  double save_lo = 1.0, save_hi = 0.0, arr_lo = 1e30, arr_hi = 0.0, pf_worst = 0.0;
  for (const auto& c : cmps) {
    save_lo = std::min(save_lo, c.red_energy_saving_vs_zp());
    save_hi = std::max(save_hi, c.red_energy_saving_vs_zp());
    if (workloads::is_gan_layer(c.spec)) {
      arr_lo = std::min(arr_lo, c.pf_array_energy_ratio());
      arr_hi = std::max(arr_hi, c.pf_array_energy_ratio());
      pf_worst = std::max(pf_worst, c.pf_energy_vs_zp());
    }
  }
  std::cout << "RED energy saving: " << format_percent(save_lo, 2) << " ~ "
            << format_percent(save_hi, 2) << "  (paper: 8% ~ 88.36%)\n";
  std::cout << "PF array energy ratio (GANs): " << format_speedup(arr_lo) << " ~ "
            << format_speedup(arr_hi) << "  (paper: 4.48x ~ 7.53x)\n";
  std::cout << "PF worst total energy vs ZP (GANs): " << format_speedup(pf_worst)
            << "  (paper: up to 6.68x)\n";
  return 0;
}
