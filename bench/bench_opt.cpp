// Design-space optimizer benchmark: strategy-vs-exhaustive evaluations-to-
// frontier and wall-clock, plus sweep-memo hit rates, emitted as
// BENCH_opt.json. Run through tools/run_bench.sh, or directly:
//
//   bench_opt [--quick] [--out BENCH_opt.json] [--seed N] [--threads N]
//
// Each strategy searches the same kind x fold x mux grid to full coverage
// (budget = grid size), so the bench is gated on every strategy recovering
// the exact exhaustive Pareto frontier; the interesting numbers are how many
// evaluations each needed before its running frontier first matched
// (stochastic strategies that focus well find it early) and what the
// memoized SweepDriver saved.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "red/common/flags.h"
#include "red/common/string_util.h"
#include "red/opt/optimizer.h"
#include "red/workloads/benchmarks.h"

int main(int argc, char** argv) {
  using namespace red;
  using bench::Clock;
  using bench::Entry;
  using bench::ms_since;
  const Flags flags = Flags::parse(argc - 1, argv + 1);
  const bool quick = flags.get_bool("quick");
  const std::string out_path = flags.get_string("out", "BENCH_opt.json");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const int threads = static_cast<int>(flags.get_int("threads", 4));

  bench::print_header("Design-space optimizer: strategies vs the exhaustive frontier",
                      "opt extension — see docs/PERFORMANCE.md");

  const auto layer = quick ? workloads::table1_reduced(8)[0] : workloads::gan_deconv1();
  auto make_space = [&] {
    opt::SearchSpace space({layer}, core::DesignKind::kRed, arch::DesignConfig{});
    space.add_axis({opt::AxisField::kKind, {0, 1, 2}});
    space.add_axis({opt::AxisField::kRedFold, quick ? std::vector<std::int64_t>{1, 2}
                                                    : std::vector<std::int64_t>{1, 2, 4, 8}});
    space.add_axis({opt::AxisField::kMuxRatio, quick ? std::vector<std::int64_t>{4, 8}
                                                     : std::vector<std::int64_t>{4, 8, 16}});
    return space;
  };

  struct Run {
    std::string strategy;
    double wall_ms = 0.0;
    double warm_ms = 0.0;  ///< identical search re-run on the warm sweep memo
    std::int64_t evaluations = 0;
    std::int64_t evals_to_frontier = 0;
    std::int64_t frontier_size = 0;
    std::int64_t repeats = 0;
    std::int64_t cache_hits = 0;
    double cache_hit_rate = 0.0;  ///< memo hit rate of the warm re-run
    bool matched = false;
  };
  std::vector<Run> runs;
  std::vector<Entry> entries;
  std::set<std::vector<double>> target;  // exhaustive frontier objective set

  for (const std::string strategy : {"exhaustive", "anneal", "evolve"}) {
    opt::OptimizerOptions options;
    options.strategy = strategy;
    options.seed = seed;
    options.threads = threads;
    opt::Optimizer optimizer(make_space(), opt::Objective::parse("latency,area"), {}, options);

    const auto t0 = Clock::now();
    const auto result = optimizer.run();
    Run run;
    run.strategy = strategy;
    run.wall_ms = ms_since(t0);
    run.evaluations = result.stats.evaluations;
    run.repeats = result.stats.repeats;
    run.frontier_size = static_cast<std::int64_t>(result.frontier.size());

    // The optimizer itself never re-prices a candidate, so a cold run cannot
    // hit the sweep memo; the warm re-run (same optimizer, same trajectory,
    // memo full) isolates what the memo is worth to repeated searches.
    const std::int64_t points_before = optimizer.sweep_stats().points;
    const std::int64_t hits_before = optimizer.sweep_stats().cache_hits;
    const auto t1 = Clock::now();
    const auto warm = optimizer.run();
    run.warm_ms = ms_since(t1);
    run.cache_hits = optimizer.sweep_stats().cache_hits - hits_before;
    const std::int64_t warm_points = optimizer.sweep_stats().points - points_before;
    run.cache_hit_rate =
        warm_points > 0 ? static_cast<double>(run.cache_hits) / static_cast<double>(warm_points)
                        : 0.0;
    std::set<std::vector<double>> warm_set, cold_set;
    for (const auto& e : warm.frontier) warm_set.insert(e.objectives);
    for (const auto& e : result.frontier) cold_set.insert(e.objectives);
    if (warm_set != cold_set) {
      std::cerr << "error: warm re-run changed the frontier\n";
      return 1;
    }

    std::set<std::vector<double>> frontier_set;
    for (const auto& e : result.frontier) frontier_set.insert(e.objectives);
    if (strategy == std::string("exhaustive")) target = frontier_set;
    run.matched = frontier_set == target;

    // Evaluations until the running frontier first contained exactly the
    // final frontier's objective set.
    opt::ParetoFrontier running(optimizer.objective().dims());
    for (std::size_t i = 0; i < result.state.evaluated.size(); ++i) {
      running.insert(result.state.evaluated[i].objectives, static_cast<std::int64_t>(i));
      std::set<std::vector<double>> now;
      for (const auto& p : running.points()) now.insert(p.objectives);
      if (now == target) {
        run.evals_to_frontier = static_cast<std::int64_t>(i) + 1;
        break;
      }
    }

    entries.push_back({"BM_Opt_" + run.strategy, run.wall_ms, 1});
    entries.push_back({"BM_Opt_" + run.strategy + "_warm", run.warm_ms, 1});
    std::cout << run.strategy << ": " << format_double(run.wall_ms, 2) << " ms cold / "
              << format_double(run.warm_ms, 2) << " ms warm, " << run.evaluations
              << " evaluations (" << run.evals_to_frontier << " to the frontier), "
              << run.frontier_size << " frontier points, " << run.repeats
              << " repeat proposals, warm memo hit rate "
              << format_percent(run.cache_hit_rate, 1)
              << (run.matched ? "" : "  [FRONTIER MISMATCH]") << '\n';
    runs.push_back(run);
  }

  const bool all_matched =
      std::all_of(runs.begin(), runs.end(), [](const Run& r) { return r.matched; });
  if (!all_matched) {
    std::cerr << "error: a strategy failed to recover the exhaustive Pareto frontier\n";
    return 1;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n  \"context\": {\"seed\": " << seed << ", \"threads\": " << threads
      << ", \"layer\": \"" << layer.name << "\", \"quick\": " << (quick ? "true" : "false")
      << "},\n  \"benchmarks\": ";
  bench::write_benchmark_array(out, entries);
  out << ",\n  \"search\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    out << "    {\"strategy\": \"" << r.strategy
        << "\", \"evaluations\": " << r.evaluations
        << ", \"evals_to_frontier\": " << r.evals_to_frontier
        << ", \"frontier_size\": " << r.frontier_size << ", \"repeats\": " << r.repeats
        << ", \"cache_hits\": " << r.cache_hits
        << ", \"cache_hit_rate\": " << report::json_number(r.cache_hit_rate)
        << ", \"matched_exhaustive\": " << (r.matched ? "true" : "false") << "}"
        << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::cout << "\nWrote " << out_path << "\n";
  return 0;
}
