// Design-space optimizer benchmark: strategy-vs-exhaustive evaluations-to-
// frontier and wall-clock, sweep-memo hit rates, persistent-store cold/warm
// wall-clock with store hit rates, and sharded-search + checkpoint-merge
// timing, emitted as BENCH_opt.json. Run through tools/run_bench.sh, or
// directly:
//
//   bench_opt [--quick] [--out BENCH_opt.json] [--seed N] [--threads N]
//
// Each strategy searches the same kind x fold x mux grid to full coverage
// (budget = grid size), so the bench is gated on every strategy recovering
// the exact exhaustive Pareto frontier; the interesting numbers are how many
// evaluations each needed before its running frontier first matched
// (stochastic strategies that focus well find it early) and what the
// memoized SweepDriver saved.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "red/common/flags.h"
#include "red/common/string_util.h"
#include "red/opt/optimizer.h"
#include "red/store/result_store.h"
#include "red/workloads/benchmarks.h"

int main(int argc, char** argv) {
  using namespace red;
  using bench::Clock;
  using bench::Entry;
  using bench::ms_since;
  const Flags flags = Flags::parse(argc - 1, argv + 1);
  const bool quick = flags.get_bool("quick");
  const std::string out_path = flags.get_string("out", "BENCH_opt.json");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const int threads = static_cast<int>(flags.get_int("threads", 4));

  bench::print_header("Design-space optimizer: strategies vs the exhaustive frontier",
                      "opt extension — see docs/PERFORMANCE.md");

  const auto layer = quick ? workloads::table1_reduced(8)[0] : workloads::gan_deconv1();
  auto make_space = [&] {
    opt::SearchSpace space({layer}, core::DesignKind::kRed, arch::DesignConfig{});
    space.add_axis({opt::AxisField::kKind, {0, 1, 2}});
    space.add_axis({opt::AxisField::kRedFold, quick ? std::vector<std::int64_t>{1, 2}
                                                    : std::vector<std::int64_t>{1, 2, 4, 8}});
    space.add_axis({opt::AxisField::kMuxRatio, quick ? std::vector<std::int64_t>{4, 8}
                                                     : std::vector<std::int64_t>{4, 8, 16}});
    return space;
  };

  struct Run {
    std::string strategy;
    double wall_ms = 0.0;
    double warm_ms = 0.0;  ///< identical search re-run on the warm sweep memo
    std::int64_t evaluations = 0;
    std::int64_t evals_to_frontier = 0;
    std::int64_t frontier_size = 0;
    std::int64_t repeats = 0;
    std::int64_t cache_hits = 0;
    double cache_hit_rate = 0.0;  ///< memo hit rate of the warm re-run
    bool matched = false;
  };
  std::vector<Run> runs;
  std::vector<Entry> entries;
  std::set<std::vector<double>> target;  // exhaustive frontier objective set

  for (const std::string strategy : {"exhaustive", "anneal", "evolve"}) {
    opt::OptimizerOptions options;
    options.strategy = strategy;
    options.seed = seed;
    options.threads = threads;
    opt::Optimizer optimizer(make_space(), opt::Objective::parse("latency,area"), {}, options);

    const auto t0 = Clock::now();
    const auto result = optimizer.run();
    Run run;
    run.strategy = strategy;
    run.wall_ms = ms_since(t0);
    run.evaluations = result.stats.evaluations;
    run.repeats = result.stats.repeats;
    run.frontier_size = static_cast<std::int64_t>(result.frontier.size());

    // The optimizer itself never re-prices a candidate, so a cold run cannot
    // hit the sweep memo; the warm re-run (same optimizer, same trajectory,
    // memo full) isolates what the memo is worth to repeated searches.
    const std::int64_t points_before = optimizer.sweep_stats().points;
    const std::int64_t hits_before = optimizer.sweep_stats().cache_hits;
    const auto t1 = Clock::now();
    const auto warm = optimizer.run();
    run.warm_ms = ms_since(t1);
    run.cache_hits = optimizer.sweep_stats().cache_hits - hits_before;
    const std::int64_t warm_points = optimizer.sweep_stats().points - points_before;
    run.cache_hit_rate =
        warm_points > 0 ? static_cast<double>(run.cache_hits) / static_cast<double>(warm_points)
                        : 0.0;
    std::set<std::vector<double>> warm_set, cold_set;
    for (const auto& e : warm.frontier) warm_set.insert(e.objectives);
    for (const auto& e : result.frontier) cold_set.insert(e.objectives);
    if (warm_set != cold_set) {
      red::log_error("warm re-run changed the frontier");
      return 1;
    }

    std::set<std::vector<double>> frontier_set;
    for (const auto& e : result.frontier) frontier_set.insert(e.objectives);
    if (strategy == std::string("exhaustive")) target = frontier_set;
    run.matched = frontier_set == target;

    // Evaluations until the running frontier first contained exactly the
    // final frontier's objective set.
    opt::ParetoFrontier running(optimizer.objective().dims());
    for (std::size_t i = 0; i < result.state.evaluated.size(); ++i) {
      running.insert(result.state.evaluated[i].objectives, static_cast<std::int64_t>(i));
      std::set<std::vector<double>> now;
      for (const auto& p : running.points()) now.insert(p.objectives);
      if (now == target) {
        run.evals_to_frontier = static_cast<std::int64_t>(i) + 1;
        break;
      }
    }

    entries.push_back({"BM_Opt_" + run.strategy, run.wall_ms, 1, run.wall_ms});
    entries.push_back({"BM_Opt_" + run.strategy + "_warm", run.warm_ms, 1, run.warm_ms});
    std::cout << run.strategy << ": " << format_double(run.wall_ms, 2) << " ms cold / "
              << format_double(run.warm_ms, 2) << " ms warm, " << run.evaluations
              << " evaluations (" << run.evals_to_frontier << " to the frontier), "
              << run.frontier_size << " frontier points, " << run.repeats
              << " repeat proposals, warm memo hit rate "
              << format_percent(run.cache_hit_rate, 1)
              << (run.matched ? "" : "  [FRONTIER MISMATCH]") << '\n';
    runs.push_back(run);
  }

  const bool all_matched =
      std::all_of(runs.begin(), runs.end(), [](const Run& r) { return r.matched; });
  if (!all_matched) {
    red::log_error("a strategy failed to recover the exhaustive Pareto frontier");
    return 1;
  }

  auto frontier_objectives = [](const std::vector<opt::CandidateEval>& frontier) {
    std::set<std::vector<double>> set;
    for (const auto& e : frontier) set.insert(e.objectives);
    return set;
  };
  auto make_options = [&] {
    opt::OptimizerOptions options;
    options.seed = seed;
    options.threads = threads;
    return options;
  };

  // Persistent-store modes: a cold exhaustive run pays every evaluation and
  // fills a fresh on-disk store; a second optimizer (a stand-in for a re-run
  // after a crash, or a parallel process) then walks the identical search
  // served from that store. Gated on the warm frontier matching cold.
  bench::print_section("persistent store (cold fill vs warm re-run)");
  const std::string store_path = out_path + ".store";
  std::remove(store_path.c_str());
  double store_cold_ms = 0.0;
  double store_warm_ms = 0.0;
  std::int64_t store_entries = 0;
  std::int64_t store_hits = 0;
  double store_hit_rate = 0.0;
  {
    opt::Optimizer cold(make_space(), opt::Objective::parse("latency,area"), {},
                        make_options());
    cold.attach_store(std::make_shared<store::ResultStore>(store_path));
    const auto t0 = Clock::now();
    const auto cold_result = cold.run();
    store_cold_ms = ms_since(t0);

    opt::Optimizer warm(make_space(), opt::Objective::parse("latency,area"), {},
                        make_options());
    auto reopened = std::make_shared<store::ResultStore>(store_path);
    store_entries = reopened->entries();
    warm.attach_store(std::move(reopened));
    const auto t1 = Clock::now();
    const auto warm_result = warm.run();
    store_warm_ms = ms_since(t1);
    store_hits = warm.sweep_stats().store_hits;
    const std::int64_t misses = warm.sweep_stats().evaluated;
    store_hit_rate = store_hits + misses > 0
                         ? static_cast<double>(store_hits) /
                               static_cast<double>(store_hits + misses)
                         : 0.0;
    if (frontier_objectives(warm_result.frontier) !=
        frontier_objectives(cold_result.frontier)) {
      red::log_error("the warm-store run changed the frontier");
      return 1;
    }
  }
  std::remove(store_path.c_str());
  entries.push_back({"BM_OptStore_cold", store_cold_ms, 1, store_cold_ms});
  entries.push_back({"BM_OptStore_warm", store_warm_ms, 1, store_warm_ms});
  std::cout << "store: " << format_double(store_cold_ms, 2) << " ms cold fill, "
            << format_double(store_warm_ms, 2) << " ms warm (" << store_entries
            << " entries, hit rate " << format_percent(store_hit_rate, 1) << ")\n";

  // Sharded search + merge: two disjoint half-grid walks, their checkpoints
  // fused by merge_states. Gated on the merged frontier equalling the
  // single-process exhaustive frontier exactly.
  bench::print_section("sharded search + checkpoint merge");
  double shard_ms = 0.0;
  double merge_ms = 0.0;
  {
    std::vector<std::pair<std::string, std::string>> documents;
    for (int i = 0; i < 2; ++i) {
      auto options = make_options();
      options.search.shard_index = i;
      options.search.shard_count = 2;
      opt::Optimizer shard(make_space(), opt::Objective::parse("latency,area"), {}, options);
      const auto t0 = Clock::now();
      const auto r = shard.run();
      shard_ms += ms_since(t0);
      documents.emplace_back("shard" + std::to_string(i), shard.checkpoint_json(r.state));
    }
    opt::Optimizer merger(make_space(), opt::Objective::parse("latency,area"), {},
                          make_options());
    const auto t0 = Clock::now();
    const auto merged = merger.merge_states(documents);
    const auto merged_frontier = merger.frontier_of(merged.state);
    merge_ms = ms_since(t0);
    if (!merged.quarantined.empty() || frontier_objectives(merged_frontier) != target) {
      red::log_error("merged shard checkpoints missed the exhaustive frontier");
      return 1;
    }
  }
  entries.push_back({"BM_OptShard_run", shard_ms, 1, shard_ms});
  entries.push_back({"BM_OptShard_merge", merge_ms, 1, merge_ms});
  std::cout << "shards: 2 x half-grid in " << format_double(shard_ms, 2)
            << " ms total, merge + frontier " << format_double(merge_ms, 2)
            << " ms, merged frontier matches exhaustive\n";

  std::ostringstream out;
  out << "{\n  \"context\": {\"seed\": " << seed << ", \"threads\": " << threads
      << ", \"layer\": \"" << layer.name << "\", \"quick\": " << (quick ? "true" : "false")
      << "},\n  \"benchmarks\": ";
  bench::write_benchmark_array(out, entries);
  out << ",\n  \"search\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    out << "    {\"strategy\": \"" << r.strategy
        << "\", \"evaluations\": " << r.evaluations
        << ", \"evals_to_frontier\": " << r.evals_to_frontier
        << ", \"frontier_size\": " << r.frontier_size << ", \"repeats\": " << r.repeats
        << ", \"cache_hits\": " << r.cache_hits
        << ", \"cache_hit_rate\": " << report::json_number(r.cache_hit_rate)
        << ", \"matched_exhaustive\": " << (r.matched ? "true" : "false") << "}"
        << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"store\": {\"cold_ms\": " << report::json_number(store_cold_ms)
      << ", \"warm_ms\": " << report::json_number(store_warm_ms)
      << ", \"entries\": " << store_entries << ", \"hits\": " << store_hits
      << ", \"hit_rate\": " << report::json_number(store_hit_rate)
      << "},\n  \"shard\": {\"shards\": 2, \"run_ms\": " << report::json_number(shard_ms)
      << ", \"merge_ms\": " << report::json_number(merge_ms)
      << ", \"merged_frontier_matched\": true}\n}\n";
  if (!bench::write_report_file(out_path, out.str())) return 1;
  return 0;
}
