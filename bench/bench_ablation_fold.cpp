// Ablation — the Sec. III-C area/parallelism trade-off.
//
// Sweeps the area-efficient fold factor on FCN_Deconv2 (and a GAN layer for
// contrast) and reports sub-crossbar count, cycles, latency, energy, and
// area. The paper's chosen point (128 sub-arrays, 2 cycles) should sit on
// the knee: half the sub-crossbars of fold 1 for only 2x the cycle count.
// The grid (folds x layers, plus the per-layer zero-padding baseline)
// evaluates through the explore::SweepDriver, so the points of each table
// run in parallel on the thread pool.
#include <iostream>

#include "bench_util.h"
#include "red/common/string_util.h"
#include "red/common/table.h"
#include "red/core/red_design.h"
#include "red/explore/sweep.h"
#include "red/workloads/benchmarks.h"

int main() {
  using namespace red;
  bench::print_header("Ablation: area-efficient fold factor (Sec. III-C, Eq. 2)",
                      "stride 8 / kernel 16x16 -> 128 sub-arrays in 2 cycles");

  const int folds[] = {1, 2, 4, 8};
  explore::SweepDriver driver(/*threads=*/4);
  for (const auto& spec : {workloads::fcn_deconv2(), workloads::gan_deconv1()}) {
    bench::print_section(spec.name);
    TextTable t({"fold", "sub-crossbars", "decoder rows", "cycles", "latency (us)",
                 "energy (uJ)", "area (mm^2)", "speedup vs ZP"});
    std::vector<explore::SweepPoint> grid;
    {
      explore::SweepPoint zp;
      zp.kind = core::DesignKind::kZeroPadding;
      zp.spec = spec;
      grid.push_back(zp);
    }
    for (int fold : folds) {
      explore::SweepPoint p;
      p.kind = core::DesignKind::kRed;
      p.cfg.red_fold = fold;
      p.spec = spec;
      grid.push_back(p);
    }
    const auto outcomes = driver.evaluate(grid);
    const double zp_lat = outcomes[0].cost.total_latency().value();
    for (std::size_t i = 1; i < outcomes.size(); ++i) {
      const auto& a = outcomes[i].activity;
      const auto& r = outcomes[i].cost;
      t.add_row({std::to_string(folds[i - 1]), std::to_string(a.sc_units),
                 std::to_string(a.dec_rows), std::to_string(a.cycles),
                 format_double(r.total_latency().value() / 1e3, 2),
                 format_double(r.total_energy().value() / 1e6, 3),
                 format_double(r.total_area().value() / 1e6, 4),
                 format_speedup(zp_lat / r.total_latency().value())});
    }
    std::cout << t.to_ascii();
  }

  bench::print_section("auto-fold selection vs sub-crossbar budget (FCN_Deconv2)");
  for (int budget : {512, 256, 128, 64, 32}) {
    arch::DesignConfig cfg;
    cfg.red_max_subcrossbars = budget;
    const core::RedDesign red(cfg);
    std::cout << "budget " << budget << " sub-arrays -> fold "
              << red.fold_for(workloads::fcn_deconv2()) << '\n';
  }
  return 0;
}
