// Ablation — physical subarray tiling (beyond the paper's monolithic-macro
// model): how bounded subarrays + digital partial-sum merging change the
// three designs' costs, and whether RED's advantage survives.
#include <iostream>

#include "bench_util.h"
#include "red/common/string_util.h"
#include "red/common/table.h"
#include "red/core/designs.h"
#include "red/report/evaluation.h"
#include "red/workloads/benchmarks.h"
#include "red/xbar/tiling.h"

int main() {
  using namespace red;
  bench::print_header("Ablation: physical subarray tiling",
                      "extension — the paper prices monolithic macros (Fig. 3)");

  bench::print_section("RED speedup / energy saving vs ZP, monolithic vs tiled (128x128)");
  {
    TextTable t({"Layer", "speedup (mono)", "speedup (tiled)", "saving (mono)",
                 "saving (tiled)"});
    for (const auto& spec : workloads::table1_benchmarks()) {
      arch::DesignConfig mono;
      arch::DesignConfig tiled;
      tiled.tiled = true;
      const auto cm = report::compare_layer(spec, mono);
      const auto ct = report::compare_layer(spec, tiled);
      t.add_row({spec.name, format_speedup(cm.red_speedup_vs_zp()),
                 format_speedup(ct.red_speedup_vs_zp()),
                 format_percent(cm.red_energy_saving_vs_zp(), 1),
                 format_percent(ct.red_energy_saving_vs_zp(), 1)});
    }
    std::cout << t.to_ascii();
  }

  bench::print_section("subarray-size sweep (GAN_Deconv1, RED)");
  {
    TextTable t({"subarray", "subarrays used", "latency (us)", "energy (uJ)", "area (mm^2)",
                 "cell utilization"});
    for (std::int64_t side : {64, 128, 256, 512}) {
      arch::DesignConfig cfg;
      cfg.tiled = true;
      cfg.tiling = {side, side};
      const auto design = core::make_design(core::DesignKind::kRed, cfg);
      const auto spec = workloads::gan_deconv1();
      const auto base = design->activity(spec);
      const auto act = arch::apply_tiling(base, cfg);
      const auto cost = design->cost(spec);
      t.add_row({std::to_string(side) + "x" + std::to_string(side),
                 std::to_string(act.sc_units),
                 format_double(cost.total_latency().value() / 1e3, 2),
                 format_double(cost.total_energy().value() / 1e6, 3),
                 format_double(cost.total_area().value() / 1e6, 4),
                 format_percent(static_cast<double>(base.cells) /
                                    static_cast<double>(act.cells),
                                1)});
    }
    std::cout << t.to_ascii();
  }
  return 0;
}
