// Streaming pipeline benchmark: N sequential single-image network runs
// (crossbars reprogrammed per Design::run call — the paper's evaluation
// style) vs the streaming batched executor (stack programmed once, images
// pipelined across stages), emitted as BENCH_pipeline.json. Run through
// tools/run_bench.sh, or directly:
//
//   bench_pipeline [--quick] [--out BENCH_pipeline.json] [--net dcgan|sngan|fcn8s]
//                  [--div N] [--design zp|pf|red] [--images N] [--threads N]
//
// The run is gated: streaming outputs and per-stage RunStats must be
// bit-identical to the sequential chain, every (image, stage) execution is
// consistency-checked against the analytic activity model, and the analytic
// evaluate_pipeline() quantities must agree with their own stage reports.
// --quick is the bench_smoke CTest configuration.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "red/common/error.h"
#include "red/common/flags.h"
#include "red/common/rng.h"
#include "red/common/string_util.h"
#include "red/core/designs.h"
#include "red/report/json.h"
#include "red/sim/pipeline.h"
#include "red/sim/streaming.h"
#include "red/tensor/tensor_ops.h"
#include "red/workloads/generator.h"
#include "red/workloads/networks.h"

int main(int argc, char** argv) try {
  using namespace red;
  using bench::Clock;
  using bench::Entry;
  using bench::ms_since;
  const Flags flags = Flags::parse(argc - 1, argv + 1);
  const bool quick = flags.get_bool("quick");
  const std::string out_path = flags.get_string("out", "BENCH_pipeline.json");
  const std::string net = flags.get_string("net", quick ? "sngan" : "dcgan");
  const int div = static_cast<int>(flags.get_int("div", quick ? 32 : 16));
  const std::string design_flag = flags.get_string("design", "red");
  const int images_n = static_cast<int>(flags.get_int("images", quick ? 3 : 8));
  const int threads = static_cast<int>(flags.get_int("threads", 4));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const int reps = quick ? 1 : 3;
  if (images_n < 1) throw ConfigError("--images must be >= 1");
  if (threads < 1) throw ConfigError("--threads must be >= 1");

  const core::DesignKind kind = core::kind_from_name(design_flag);
  const auto stack = workloads::named_stack(net, div);

  bench::print_header("Streaming batched execution: sequential per-image runs vs the pipeline",
                      "scale extension — see docs/PERFORMANCE.md");

  arch::DesignConfig cfg;
  const auto kernels = workloads::make_stack_kernels(stack, seed);
  const auto images = workloads::make_input_batch(stack[0], images_n, seed);

  std::vector<Entry> entries;

  // ---- Before: N sequential single-image chains, reprogram-per-run --------
  const auto design = core::make_design(kind, cfg);
  std::vector<Tensor<std::int32_t>> seq_outputs(images.size());
  std::vector<std::vector<arch::RunStats>> seq_stats(
      images.size(), std::vector<arch::RunStats>(stack.size()));
  double seq_ms = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    for (std::size_t k = 0; k < images.size(); ++k) {
      Tensor<std::int32_t> in = images[k];
      for (std::size_t i = 0; i < stack.size(); ++i) {
        Tensor<std::int32_t> out = design->run(stack[i], in, kernels[i], &seq_stats[k][i]);
        if (i + 1 < stack.size())
          in = sim::requantize_activations(out, cfg.quant.abits);
        else
          seq_outputs[k] = std::move(out);
      }
    }
    const double t_ms = ms_since(t0);
    seq_ms = r == 0 ? t_ms : std::min(seq_ms, t_ms);
  }
  entries.push_back({"BM_SequentialPerImage_n" + std::to_string(images_n), seq_ms, reps});

  // ---- After: program once, stream the batch ------------------------------
  const auto t_prog = Clock::now();
  const sim::StreamingExecutor executor(kind, cfg, stack, kernels);
  const double program_ms = ms_since(t_prog);

  // Gate run first (per-cell activity checks on), then timed reps with the
  // checks off — the sequential baseline above runs unchecked, so the timed
  // comparison must too. Outputs and stats are identical either way
  // (determinism contract), so the gates below read the checked run.
  sim::StreamingOptions checked;
  checked.threads = threads;
  checked.check = true;
  const sim::StreamingBatchResult gated = executor.stream(images, checked);
  sim::StreamingOptions opts;
  opts.threads = threads;
  opts.check = false;
  sim::StreamingBatchResult streamed;
  double stream_ms = 0.0;
  for (int r = 0; r < reps; ++r) {
    auto res = executor.stream(images, opts);
    const double t_ms = res.wall_ms;
    if (r == 0 || t_ms < stream_ms) {
      stream_ms = t_ms;
      streamed = std::move(res);
    }
  }
  entries.push_back({"BM_StreamingPipelined_n" + std::to_string(images_n) + "_t" +
                         std::to_string(threads),
                     stream_ms, reps});

  double layer_major_ms = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto res = executor.stream_layer_major(images, opts);
    const double t_ms = res.wall_ms;
    layer_major_ms = r == 0 ? t_ms : std::min(layer_major_ms, t_ms);
  }
  entries.push_back({"BM_StreamingLayerMajor_n" + std::to_string(images_n), layer_major_ms, reps});

  // ---- Gate 1: streaming must be bit-identical to the sequential chain ----
  // (checked against both the gated run and the unchecked timed run, which
  // must themselves agree bit-for-bit)
  bool bit_identical = true;
  for (std::size_t k = 0; k < images.size(); ++k) {
    if (!first_mismatch(seq_outputs[k], streamed.images[k].output).empty()) bit_identical = false;
    if (!first_mismatch(gated.images[k].output, streamed.images[k].output).empty())
      bit_identical = false;
    for (std::size_t i = 0; i < stack.size(); ++i)
      if (!(seq_stats[k][i] == streamed.images[k].layer_stats[i]) ||
          !(gated.images[k].layer_stats[i] == streamed.images[k].layer_stats[i]))
        bit_identical = false;
  }
  if (!bit_identical) {
    red::log_error("streaming executor deviates from the sequential chain");
    return 1;
  }

  // ---- Gate 2: the analytic pipeline model must agree with its stages -----
  const auto model = sim::evaluate_pipeline(kind, stack, cfg);
  double model_seq = 0.0, model_slowest = 0.0;
  for (const auto& s : model.stages) {
    model_seq += s.cost.total_latency().value();
    model_slowest = std::max(model_slowest, s.cost.total_latency().value());
  }
  const bool model_consistent = model.stages.size() == stack.size() &&
                                model.initiation_interval.value() == model_slowest &&
                                model.fill_latency.value() == model_seq;
  if (!model_consistent) {
    red::log_error("evaluate_pipeline quantities disagree with its own stage reports");
    return 1;
  }

  const double speedup = stream_ms > 0.0 ? seq_ms / stream_ms : 0.0;
  const double images_per_s = stream_ms > 0.0 ? 1e3 * images_n / stream_ms : 0.0;
  const double model_speedup =
      model.pipelined_latency(images_n).value() > 0.0
          ? model_seq * images_n / model.pipelined_latency(images_n).value()
          : 0.0;

  std::cout << net << " (div " << div << ") on " << streamed.design_name << ", "
            << images_n << " images, " << stack.size() << " stages:\n"
            << "sequential per-image " << format_double(seq_ms, 2) << " ms, streaming "
            << format_double(stream_ms, 2) << " ms (" << format_speedup(speedup) << " at "
            << threads << " threads; program-once " << format_double(program_ms, 2)
            << " ms, layer-major " << format_double(layer_major_ms, 2) << " ms)\n"
            << "fill " << format_double(streamed.fill_ms(), 2) << " ms, steady interval "
            << format_double(streamed.steady_interval_ms(), 3) << " ms/img, "
            << format_double(images_per_s, 0) << " img/s measured\n"
            << "model: fill " << format_double(model.fill_latency.value() / 1e3, 2)
            << " us, interval " << format_double(model.initiation_interval.value() / 1e3, 2)
            << " us, " << format_double(model.throughput_img_per_s(), 0)
            << " img/s, pipelined speedup " << format_speedup(model_speedup) << " over "
            << images_n << " sequential images\n"
            << "gates: bit-identical vs sequential chain PASS, per-stage activity "
               "consistency PASS, analytic model consistency PASS\n";

  std::ostringstream out;
  const auto num = [](double v) { return red::report::json_number(v); };
  out << "{\n  \"context\": {\"net\": \"" << net << "\", \"design\": \""
      << streamed.design_name << "\", \"images\": " << images_n
      << ", \"stages\": " << stack.size() << ", \"div\": " << div
      << ", \"threads\": " << threads << ", \"quick\": " << (quick ? "true" : "false")
      << "},\n  \"benchmarks\": ";
  bench::write_benchmark_array(out, entries);
  out << ",\n  \"throughput\": {\"program_ms\": " << num(program_ms)
      << ", \"fill_ms\": " << num(streamed.fill_ms())
      << ", \"steady_interval_ms\": " << num(streamed.steady_interval_ms())
      << ", \"images_per_s\": " << num(images_per_s)
      << ", \"speedup_vs_sequential\": " << num(speedup)
      << "},\n  \"model\": {\"fill_ns\": " << num(model.fill_latency.value())
      << ", \"initiation_interval_ns\": " << num(model.initiation_interval.value())
      << ", \"images_per_s\": " << num(model.throughput_img_per_s())
      << ", \"pipelined_speedup\": " << num(model_speedup)
      << "},\n  \"equivalence\": {\"bit_identical_vs_sequential\": true"
      << ", \"programmed_fast_path\": " << (streamed.programmed_fast_path ? "true" : "false")
      << ", \"model_consistent\": true}\n}\n";
  if (!bench::write_report_file(out_path, out.str())) return 1;
  return 0;
} catch (const std::exception& e) {
  red::log_error(e.what());
  return 2;
}
