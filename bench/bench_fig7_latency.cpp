// Fig. 7 — latency: (a) speedup over zero-padding, (b) array/periphery
// execution-time breakdown.
//
// Paper: RED achieves 3.69~31.15x speedup over zero-padding; zero-padding
// holds 1.55~2.62x longer latency than padding-free on GANs; RED cuts
// 76.9~96.8% of the zero-padding latency.
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "red/common/string_util.h"
#include "red/report/evaluation.h"
#include "red/report/figures.h"
#include "red/workloads/benchmarks.h"

int main() {
  using namespace red;
  bench::print_header("Fig. 7: latency comparison",
                      "RED speedup 3.69~31.15x; ZP 1.55~2.62x slower than PF on GANs");
  const auto cmps = report::compare_layers(workloads::table1_benchmarks());

  bench::print_section("(a) speedup over the zero-padding design");
  std::cout << report::fig7a_speedup(cmps).to_ascii();

  bench::print_section("(b) execution time breakdown (normalized to zero-padding = 100%)");
  std::cout << report::fig7b_latency_breakdown(cmps).to_ascii();

  bench::print_section("paper-band summary");
  double lo = 1e30, hi = 0, red_min = 1.0, red_max = 0.0;
  for (const auto& c : cmps) {
    lo = std::min(lo, c.red_speedup_vs_zp());
    hi = std::max(hi, c.red_speedup_vs_zp());
    red_min = std::min(red_min, c.red_latency_reduction_vs_zp());
    red_max = std::max(red_max, c.red_latency_reduction_vs_zp());
  }
  std::cout << "RED speedup range: " << format_speedup(lo) << " ~ " << format_speedup(hi)
            << "  (paper: 3.69x ~ 31.15x)\n";
  std::cout << "RED latency reduction: " << format_percent(red_min, 1) << " ~ "
            << format_percent(red_max, 1) << "  (paper: 76.9% ~ 96.8%)\n";
  double zp_over_pf_lo = 1e30, zp_over_pf_hi = 0;
  for (const auto& c : cmps) {
    if (!workloads::is_gan_layer(c.spec)) continue;
    zp_over_pf_lo = std::min(zp_over_pf_lo, c.pf_speedup_vs_zp());
    zp_over_pf_hi = std::max(zp_over_pf_hi, c.pf_speedup_vs_zp());
  }
  std::cout << "ZP latency vs PF on GANs: " << format_speedup(zp_over_pf_lo) << " ~ "
            << format_speedup(zp_over_pf_hi) << "  (paper: 1.55x ~ 2.62x)\n";
  return 0;
}
