// Ablation — analog IR drop vs crossbar size (beyond the paper's ideal-array
// assumption): solves the resistive network and reports the column-current
// error, justifying the bounded-subarray tiling (128x128) used by the
// physical deployment model.
#include <iostream>

#include "bench_util.h"
#include "red/common/rng.h"
#include "red/common/string_util.h"
#include "red/common/table.h"
#include "red/xbar/analog.h"

int main() {
  using namespace red;
  bench::print_header("Ablation: analog IR drop vs crossbar size",
                      "extension — why physical subarrays stay near 128x128");

  Rng rng(12);
  bench::print_section("worst/mean column-current error (random 2-bit pattern, all rows on)");
  TextTable t({"array", "r_wire (ohm)", "worst err", "mean err", "iterations"});
  for (std::int64_t side : {32, 64, 128}) {
    std::vector<std::uint8_t> levels(static_cast<std::size_t>(side * side));
    for (auto& l : levels) l = static_cast<std::uint8_t>(rng.uniform_int(0, 3));
    std::vector<std::uint8_t> inputs(static_cast<std::size_t>(side), 1);
    for (double rw : {0.5, 1.0, 2.0}) {
      xbar::AnalogConfig cfg;
      cfg.r_wire_ohm = rw;
      const auto r = xbar::solve_crossbar_read(levels, side, side, 3, inputs, cfg);
      t.add_row({std::to_string(side) + "x" + std::to_string(side), format_double(rw, 1),
                 format_percent(r.worst_relative_error(), 2),
                 format_percent(r.mean_relative_error(), 2),
                 std::to_string(r.iterations) + (r.converged ? "" : " (not converged)")});
    }
  }
  std::cout << t.to_ascii();

  std::cout << "\nReading: at 1 ohm/segment a 128x128 subarray already loses a noticeable\n"
               "fraction of its far-corner current; larger monolithic macros (the paper's\n"
               "Fig. 3 idealization) would be analog-infeasible, which is why the tiled\n"
               "deployment mode (bench_ablation_tiling) bounds subarrays at 128x128.\n";
  return 0;
}
