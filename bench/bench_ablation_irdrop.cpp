// Ablation — analog IR drop vs crossbar size (beyond the paper's ideal-array
// assumption): solves the resistive network and reports the column-current
// error, justifying the bounded-subarray tiling (128x128) used by the
// physical deployment model.
//
// Default solver is the ADI line-relaxation fast path (perf/analog_kernel.h);
// --reference switches back to the point-SOR oracle. Thread scaling of the
// line solves and the swept array sizes are CLI-controllable:
//
//   bench_ablation_irdrop [--sides 32,64,128] [--rwires 0.5,1.0,2.0]
//                         [--threads N] [--reference]
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "red/common/flags.h"
#include "red/common/rng.h"
#include "red/common/string_util.h"
#include "red/common/table.h"
#include "red/perf/analog_kernel.h"
#include "red/xbar/analog.h"

int main(int argc, char** argv) {
  using namespace red;
  const Flags flags = Flags::parse(argc - 1, argv + 1);
  const int threads = static_cast<int>(flags.get_int("threads", 1));
  const bool reference = flags.get_bool("reference");
  const auto sides = parse_int_list(flags.get_string("sides", "32,64,128"), "sides");
  const auto rwires = parse_double_list(flags.get_string("rwires", "0.5,1.0,2.0"), "rwires");

  bench::print_header("Ablation: analog IR drop vs crossbar size",
                      "extension — why physical subarrays stay near 128x128");
  std::cout << "solver: "
            << (reference ? "reference point-SOR (single-threaded)"
                          : "ADI line relaxation, threads " + std::to_string(threads))
            << "\n";

  Rng rng(12);
  perf::AnalogWorkspace ws;
  bench::print_section("worst/mean column-current error (random 2-bit pattern, all rows on)");
  TextTable t({"array", "r_wire (ohm)", "worst err", "mean err", "sweeps", "solve (ms)"});
  for (std::int64_t side : sides) {
    std::vector<std::uint8_t> levels(static_cast<std::size_t>(side * side));
    for (auto& l : levels) l = static_cast<std::uint8_t>(rng.uniform_int(0, 3));
    std::vector<std::uint8_t> inputs(static_cast<std::size_t>(side), 1);
    for (double rw : rwires) {
      xbar::AnalogConfig cfg;
      cfg.r_wire_ohm = rw;
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = reference
                         ? xbar::solve_crossbar_read(levels, side, side, 3, inputs, cfg)
                         : perf::solve_crossbar_read_fast(levels, side, side, 3, inputs, cfg,
                                                          ws, threads);
      const double ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
              .count();
      t.add_row({std::to_string(side) + "x" + std::to_string(side), format_double(rw, 1),
                 format_percent(r.worst_relative_error(), 2),
                 format_percent(r.mean_relative_error(), 2),
                 std::to_string(r.iterations) + (r.converged ? "" : " (not converged)"),
                 format_double(ms, 3)});
    }
  }
  std::cout << t.to_ascii();

  std::cout << "\nReading: at 1 ohm/segment a 128x128 subarray already loses a noticeable\n"
               "fraction of its far-corner current; larger monolithic macros (the paper's\n"
               "Fig. 3 idealization) would be analog-infeasible, which is why the tiled\n"
               "deployment mode (bench_ablation_tiling) bounds subarrays at 128x128.\n";
  return 0;
}
