// Micro-benchmarks of the simulator itself (google-benchmark): crossbar MVM
// fast vs bit-accurate paths (per packed-kernel dispatch tier), design
// schedule execution, and analytic cost evaluation throughput.
//
// The binary doubles as the bench_smoke oracle gate: main() refuses to run
// (exit 1) unless every dispatch tier reproduces
// LogicalXbar::mvm_bit_accurate_reference bit-exactly, outputs and stats.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "red/common/rng.h"
#include "red/core/designs.h"
#include "red/core/schedule.h"
#include "red/perf/mvm_kernel.h"
#include "red/perf/workspace.h"
#include "red/report/evaluation.h"
#include "red/sim/engine.h"
#include "red/workloads/benchmarks.h"
#include "red/workloads/generator.h"
#include "red/workloads/networks.h"
#include "red/xbar/analog.h"
#include "red/xbar/crossbar.h"

// Global allocation counter backing the warm-path no-allocation assertions:
// a workspace-based benchmark loop that heap-allocates is a perf regression
// the timings alone would hide.
std::atomic<std::int64_t> g_heap_allocs{0};

// noinline: keeps GCC from inlining the malloc/free pair into call sites,
// where -Wmismatched-new-delete would flag the (intentional) combination.
[[gnu::noinline]] void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

[[gnu::noinline]] void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

[[gnu::noinline]] void operator delete(void* p) noexcept { std::free(p); }
[[gnu::noinline]] void operator delete[](void* p) noexcept { std::free(p); }
[[gnu::noinline]] void operator delete(void* p, std::size_t) noexcept { std::free(p); }
[[gnu::noinline]] void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace red;

// Set when any benchmark loop trips an in-run assertion; main() turns it into
// a non-zero exit so the bench_smoke ctest entry actually gates.
std::atomic<bool> g_bench_failed{false};

xbar::LogicalXbar make_xbar(std::int64_t rows, std::int64_t cols,
                            xbar::QuantConfig q = xbar::QuantConfig{}) {
  Rng rng(1);
  std::vector<std::int32_t> w(static_cast<std::size_t>(rows * cols));
  for (auto& v : w) v = static_cast<std::int32_t>(rng.uniform_int(-128, 127));
  return xbar::LogicalXbar(rows, cols, w, q);
}

std::vector<std::int32_t> make_input(std::int64_t rows) {
  Rng rng(2);
  std::vector<std::int32_t> in(static_cast<std::size_t>(rows));
  for (auto& v : in) v = static_cast<std::int32_t>(rng.uniform_int(-128, 127));
  return in;
}

xbar::QuantConfig clipped_config() {
  xbar::QuantConfig q;
  q.adc.mode = xbar::AdcMode::kClipped;
  q.adc.bits = 6;
  return q;
}

void BM_MvmFastPath(benchmark::State& state) {
  const auto rows = state.range(0);
  const auto xb = make_xbar(rows, 64);
  const auto in = make_input(rows);
  for (auto _ : state) benchmark::DoNotOptimize(xb.mvm(in));
  state.SetItemsProcessed(state.iterations() * rows * 64);
}
BENCHMARK(BM_MvmFastPath)->Arg(128)->Arg(512)->Arg(2048);

// The "before" of BENCH_mvm.json: the original column-major slice/bit-plane
// walk the fast kernels are equivalence-gated against.
void BM_MvmBitAccurateReference(benchmark::State& state) {
  const auto rows = state.range(0);
  const auto xb = make_xbar(rows, 64);
  const auto in = make_input(rows);
  for (auto _ : state) benchmark::DoNotOptimize(xb.mvm_bit_accurate_reference(in));
  state.SetItemsProcessed(state.iterations() * rows * 64);
}
BENCHMARK(BM_MvmBitAccurateReference)->Arg(128)->Arg(512);

void BM_MvmBitAccurate(benchmark::State& state) {
  const auto rows = state.range(0);
  const auto xb = make_xbar(rows, 64);
  const auto in = make_input(rows);
  for (auto _ : state) benchmark::DoNotOptimize(xb.mvm_bit_accurate(in));
  state.SetItemsProcessed(state.iterations() * rows * 64);
}
BENCHMARK(BM_MvmBitAccurate)->Arg(128)->Arg(512);

// Zero-allocation workspace overload (the hot-loop form the designs use).
void BM_MvmBitAccurateWorkspace(benchmark::State& state) {
  const auto rows = state.range(0);
  const auto xb = make_xbar(rows, 64);
  const auto in = make_input(rows);
  perf::MvmWorkspace ws;
  for (auto _ : state) benchmark::DoNotOptimize(xb.mvm_bit_accurate(in, ws));
  state.SetItemsProcessed(state.iterations() * rows * 64);
}
BENCHMARK(BM_MvmBitAccurateWorkspace)->Arg(128)->Arg(512);

// One ideal-ADC workspace row per dispatch tier, so BENCH_mvm.json carries
// the scalar "before" next to the packed portable/POPCNT/AVX2/AVX-512
// "after" on every run. The label records the tier actually installed
// (requests above the machine's support clamp down).
void BM_MvmPackedIsa(benchmark::State& state, perf::MvmIsa isa) {
  const auto rows = state.range(0);
  const auto xb = make_xbar(rows, 64);
  const auto in = make_input(rows);
  const perf::MvmIsa installed = perf::set_mvm_isa(isa);
  state.SetLabel(perf::mvm_isa_name(installed));
  perf::MvmWorkspace ws;
  for (auto _ : state) benchmark::DoNotOptimize(xb.mvm_bit_accurate(in, ws));
  perf::set_mvm_isa(perf::mvm_detected_isa());
  state.SetItemsProcessed(state.iterations() * rows * 64);
}
BENCHMARK_CAPTURE(BM_MvmPackedIsa, scalar, perf::MvmIsa::kScalar)->Arg(128)->Arg(512);
BENCHMARK_CAPTURE(BM_MvmPackedIsa, portable, perf::MvmIsa::kPortable)->Arg(128)->Arg(512);
BENCHMARK_CAPTURE(BM_MvmPackedIsa, popcnt, perf::MvmIsa::kPopcnt)->Arg(128)->Arg(512);
BENCHMARK_CAPTURE(BM_MvmPackedIsa, avx2, perf::MvmIsa::kAvx2)->Arg(128)->Arg(512);
BENCHMARK_CAPTURE(BM_MvmPackedIsa, avx512, perf::MvmIsa::kAvx512)->Arg(128)->Arg(512);

// Saturating-ADC regime: exercises the per-pulse compacted clipped kernel
// (reference and fast variants, for the before/after report).
void BM_MvmClippedReference(benchmark::State& state) {
  const auto rows = state.range(0);
  const auto xb = make_xbar(rows, 64, clipped_config());
  const auto in = make_input(rows);
  for (auto _ : state) benchmark::DoNotOptimize(xb.mvm_bit_accurate_reference(in));
  state.SetItemsProcessed(state.iterations() * rows * 64);
}
BENCHMARK(BM_MvmClippedReference)->Arg(128)->Arg(512);

void BM_MvmClipped(benchmark::State& state) {
  const auto rows = state.range(0);
  const auto xb = make_xbar(rows, 64, clipped_config());
  const auto in = make_input(rows);
  perf::MvmWorkspace ws;
  for (auto _ : state) benchmark::DoNotOptimize(xb.mvm_bit_accurate(in, ws));
  state.SetItemsProcessed(state.iterations() * rows * 64);
}
BENCHMARK(BM_MvmClipped)->Arg(128)->Arg(512);

// Batched API over one crossbar (amortized encoding setup + buffers). The
// first call sizes every workspace buffer for the (rows, batch) shape; warm
// calls must then be allocation-free, asserted via the global new counter.
void BM_MvmBatch(benchmark::State& state) {
  const std::int64_t rows = 128;
  const auto batch = state.range(0);
  const auto xb = make_xbar(rows, 64);
  const auto in = make_input(rows * batch);
  perf::MvmWorkspace ws;
  benchmark::DoNotOptimize(xb.mvm_batch(in, batch, /*bit_accurate=*/true, ws));  // size once
  const std::int64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state)
    benchmark::DoNotOptimize(xb.mvm_batch(in, batch, /*bit_accurate=*/true, ws));
  if (g_heap_allocs.load(std::memory_order_relaxed) != allocs_before) {
    g_bench_failed.store(true, std::memory_order_relaxed);
    state.SkipWithError("mvm_batch heap-allocated on the warm path");
  }
  state.SetItemsProcessed(state.iterations() * rows * 64 * batch);
}
BENCHMARK(BM_MvmBatch)->Arg(8)->Arg(64);

void BM_DesignRun(benchmark::State& state) {
  const auto kind = static_cast<core::DesignKind>(state.range(0));
  const auto design = core::make_design(kind);
  // Reduced-channel SNGAN layer: full spatial structure, fast execution.
  nn::DeconvLayerSpec spec{"bench", 4, 4, 32, 16, 4, 4, 2, 1, 0};
  Rng rng(3);
  const auto input = workloads::make_input(spec, rng, 1, 7);
  const auto kernel = workloads::make_kernel(spec, rng, -7, 7);
  for (auto _ : state) benchmark::DoNotOptimize(design->run(spec, input, kernel));
}
BENCHMARK(BM_DesignRun)
    ->Arg(static_cast<int>(core::DesignKind::kZeroPadding))
    ->Arg(static_cast<int>(core::DesignKind::kPaddingFree))
    ->Arg(static_cast<int>(core::DesignKind::kRed));

// Whole-network functional simulation (SNGAN generator, reduced channels)
// at 1..N worker lanes: the network-level scaling the threading layer buys.
void BM_SimulateNetwork(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto stack = workloads::sngan_generator(/*channel_div=*/8);
  Rng rng(5);
  std::vector<Tensor<std::int32_t>> inputs, kernels;
  for (const auto& layer : stack) {
    inputs.push_back(workloads::make_input(layer, rng, 1, 7));
    kernels.push_back(workloads::make_kernel(layer, rng, -7, 7));
  }
  arch::DesignConfig cfg;
  cfg.threads = threads;
  const auto design = core::make_design(core::DesignKind::kZeroPadding, cfg);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::simulate_network(*design, stack, inputs, kernels, /*check=*/false, threads));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(stack.size()));
}
BENCHMARK(BM_SimulateNetwork)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_AnalyticCostTable1(benchmark::State& state) {
  const auto specs = workloads::table1_benchmarks();
  for (auto _ : state)
    benchmark::DoNotOptimize(report::compare_layers(specs));
  state.SetItemsProcessed(state.iterations() * specs.size() * 3);
}
BENCHMARK(BM_AnalyticCostTable1);

void BM_ScheduleGeneration(benchmark::State& state) {
  const nn::DeconvLayerSpec spec{"sched", 70, 70, 21, 21, 16, 16, 8, 0, 0};
  const core::ZeroSkipSchedule schedule(spec, 2);
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule.cycle(i));
    i = (i + 1) % schedule.num_cycles();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScheduleGeneration);

void BM_AnalogIrDropSolve(benchmark::State& state) {
  const auto side = state.range(0);
  Rng rng(4);
  std::vector<std::uint8_t> levels(static_cast<std::size_t>(side * side));
  for (auto& l : levels) l = static_cast<std::uint8_t>(rng.uniform_int(0, 3));
  std::vector<std::uint8_t> inputs(static_cast<std::size_t>(side), 1);
  xbar::AnalogConfig cfg;
  for (auto _ : state)
    benchmark::DoNotOptimize(xbar::solve_crossbar_read(levels, side, side, 3, inputs, cfg));
  state.SetItemsProcessed(state.iterations() * side * side);
}
BENCHMARK(BM_AnalogIrDropSolve)->Arg(32)->Arg(64);

// bench_smoke oracle gate: every dispatch tier must reproduce the scalar
// reference bit-exactly (outputs AND MvmStats) before any timing is
// reported. Runs over ideal, clipped, and multi-bit-DAC regimes on shapes
// that cross 64-bit word boundaries.
bool packed_kernels_match_oracle() {
  xbar::QuantConfig dac2;
  dac2.dac_bits = 2;
  const xbar::QuantConfig regimes[] = {xbar::QuantConfig{}, clipped_config(), dac2};
  const perf::MvmIsa tiers[] = {perf::MvmIsa::kScalar, perf::MvmIsa::kPortable,
                                perf::MvmIsa::kPopcnt, perf::MvmIsa::kAvx2,
                                perf::MvmIsa::kAvx512};
  bool ok = true;
  for (const auto& q : regimes) {
    for (const std::int64_t rows : {std::int64_t{129}, std::int64_t{512}}) {
      const auto xb = make_xbar(rows, 33, q);
      Rng rng(2);
      std::vector<std::int32_t> in(static_cast<std::size_t>(rows));
      const std::int64_t lo = q.dac_bits == 1 ? -(std::int64_t{1} << (q.abits - 1)) : 0;
      const std::int64_t hi = q.dac_bits == 1 ? (std::int64_t{1} << (q.abits - 1)) - 1
                                              : (std::int64_t{1} << q.abits) - 1;
      for (auto& v : in) v = static_cast<std::int32_t>(rng.uniform_int(lo, hi));
      xbar::MvmStats ref_stats;
      const auto ref = xb.mvm_bit_accurate_reference(in, &ref_stats);
      for (const auto isa : tiers) {
        const perf::MvmIsa installed = perf::set_mvm_isa(isa);
        perf::MvmWorkspace ws;
        xbar::MvmStats got_stats;
        const auto got = xb.mvm_bit_accurate(in, ws, &got_stats);
        if (std::vector<std::int64_t>(got.begin(), got.end()) != ref || got_stats != ref_stats) {
          std::fprintf(stderr, "oracle mismatch: tier %s, rows %lld\n",
                       perf::mvm_isa_name(installed), static_cast<long long>(rows));
          ok = false;
        }
      }
    }
  }
  perf::set_mvm_isa(perf::mvm_detected_isa());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (!packed_kernels_match_oracle()) return 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return g_bench_failed.load(std::memory_order_relaxed) ? 1 : 0;
}
