// Micro-benchmarks of the simulator itself (google-benchmark): crossbar MVM
// fast vs bit-accurate paths, design schedule execution, and analytic cost
// evaluation throughput.
#include <benchmark/benchmark.h>

#include <vector>

#include "red/common/rng.h"
#include "red/core/designs.h"
#include "red/report/evaluation.h"
#include "red/core/schedule.h"
#include "red/workloads/benchmarks.h"
#include "red/workloads/generator.h"
#include "red/xbar/analog.h"
#include "red/xbar/crossbar.h"

namespace {

using namespace red;

xbar::LogicalXbar make_xbar(std::int64_t rows, std::int64_t cols) {
  Rng rng(1);
  std::vector<std::int32_t> w(static_cast<std::size_t>(rows * cols));
  for (auto& v : w) v = static_cast<std::int32_t>(rng.uniform_int(-128, 127));
  return xbar::LogicalXbar(rows, cols, w, xbar::QuantConfig{});
}

std::vector<std::int32_t> make_input(std::int64_t rows) {
  Rng rng(2);
  std::vector<std::int32_t> in(static_cast<std::size_t>(rows));
  for (auto& v : in) v = static_cast<std::int32_t>(rng.uniform_int(-128, 127));
  return in;
}

void BM_MvmFastPath(benchmark::State& state) {
  const auto rows = state.range(0);
  const auto xb = make_xbar(rows, 64);
  const auto in = make_input(rows);
  for (auto _ : state) benchmark::DoNotOptimize(xb.mvm(in));
  state.SetItemsProcessed(state.iterations() * rows * 64);
}
BENCHMARK(BM_MvmFastPath)->Arg(128)->Arg(512)->Arg(2048);

void BM_MvmBitAccurate(benchmark::State& state) {
  const auto rows = state.range(0);
  const auto xb = make_xbar(rows, 64);
  const auto in = make_input(rows);
  for (auto _ : state) benchmark::DoNotOptimize(xb.mvm_bit_accurate(in));
  state.SetItemsProcessed(state.iterations() * rows * 64);
}
BENCHMARK(BM_MvmBitAccurate)->Arg(128)->Arg(512);

void BM_DesignRun(benchmark::State& state) {
  const auto kind = static_cast<core::DesignKind>(state.range(0));
  const auto design = core::make_design(kind);
  // Reduced-channel SNGAN layer: full spatial structure, fast execution.
  nn::DeconvLayerSpec spec{"bench", 4, 4, 32, 16, 4, 4, 2, 1, 0};
  Rng rng(3);
  const auto input = workloads::make_input(spec, rng, 1, 7);
  const auto kernel = workloads::make_kernel(spec, rng, -7, 7);
  for (auto _ : state) benchmark::DoNotOptimize(design->run(spec, input, kernel));
}
BENCHMARK(BM_DesignRun)
    ->Arg(static_cast<int>(core::DesignKind::kZeroPadding))
    ->Arg(static_cast<int>(core::DesignKind::kPaddingFree))
    ->Arg(static_cast<int>(core::DesignKind::kRed));

void BM_AnalyticCostTable1(benchmark::State& state) {
  const auto specs = workloads::table1_benchmarks();
  for (auto _ : state)
    benchmark::DoNotOptimize(report::compare_layers(specs));
  state.SetItemsProcessed(state.iterations() * specs.size() * 3);
}
BENCHMARK(BM_AnalyticCostTable1);

void BM_ScheduleGeneration(benchmark::State& state) {
  const nn::DeconvLayerSpec spec{"sched", 70, 70, 21, 21, 16, 16, 8, 0, 0};
  const core::ZeroSkipSchedule schedule(spec, 2);
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule.cycle(i));
    i = (i + 1) % schedule.num_cycles();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScheduleGeneration);

void BM_AnalogIrDropSolve(benchmark::State& state) {
  const auto side = state.range(0);
  Rng rng(4);
  std::vector<std::uint8_t> levels(static_cast<std::size_t>(side * side));
  for (auto& l : levels) l = static_cast<std::uint8_t>(rng.uniform_int(0, 3));
  std::vector<std::uint8_t> inputs(static_cast<std::size_t>(side), 1);
  xbar::AnalogConfig cfg;
  for (auto _ : state)
    benchmark::DoNotOptimize(xbar::solve_crossbar_read(levels, side, side, 3, inputs, cfg));
  state.SetItemsProcessed(state.iterations() * side * side);
}
BENCHMARK(BM_AnalogIrDropSolve)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
