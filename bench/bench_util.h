// Shared helpers for the figure and perf benches: headers, wall-clock
// timing, and the BENCH_*.json benchmark-entry scaffolding.
#pragma once

#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "red/report/json.h"
#include "red/store/io.h"

namespace red::bench {

inline void print_header(const std::string& title, const std::string& paper_reference) {
  std::cout << "==============================================================\n"
            << title << '\n'
            << "Paper reference: " << paper_reference << '\n'
            << "==============================================================\n";
}

inline void print_section(const std::string& name) { std::cout << "\n--- " << name << " ---\n"; }

using Clock = std::chrono::steady_clock;

inline double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// One timed benchmark row of a BENCH_*.json report.
struct Entry {
  std::string name;
  double real_time_ms = 0.0;    ///< best (minimum) time over `iterations` runs
  std::int64_t iterations = 1;  ///< timed repetitions real_time_ms is the best of
};

/// Durably write a finished BENCH_*.json document (temp + fsync + rename via
/// store::write_file_atomic): a bench killed mid-emit can never leave a torn
/// report for the comparison tooling to choke on. Returns false (after
/// printing the error) instead of throwing so benches keep their exit-code
/// convention.
inline bool write_report_file(const std::string& path, const std::string& content) {
  try {
    store::write_file_atomic(path, content);
  } catch (const std::exception& e) {
    std::cerr << "error: cannot write " << path << ": " << e.what() << "\n";
    return false;
  }
  std::cout << "\nWrote " << path << "\n";
  return true;
}

/// Emit the `"benchmarks": [...]` array (without the key) to `os`, doubles
/// at full round-trip precision via report::json_number.
inline void write_benchmark_array(std::ostream& os, const std::vector<Entry>& entries) {
  os << "[\n";
  for (std::size_t i = 0; i < entries.size(); ++i)
    os << "    {\"name\": \"" << entries[i].name << "\", \"real_time_ms\": "
       << report::json_number(entries[i].real_time_ms)
       << ", \"iterations\": " << entries[i].iterations << "}"
       << (i + 1 < entries.size() ? ",\n" : "\n");
  os << "  ]";
}

}  // namespace red::bench
