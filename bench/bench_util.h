// Shared header/footer helpers for the figure benches.
#pragma once

#include <iostream>
#include <string>

namespace red::bench {

inline void print_header(const std::string& title, const std::string& paper_reference) {
  std::cout << "==============================================================\n"
            << title << '\n'
            << "Paper reference: " << paper_reference << '\n'
            << "==============================================================\n";
}

inline void print_section(const std::string& name) { std::cout << "\n--- " << name << " ---\n"; }

}  // namespace red::bench
