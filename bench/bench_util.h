// Shared helpers for the figure and perf benches: headers, wall-clock
// timing, and the BENCH_*.json benchmark-entry scaffolding.
#pragma once

#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "red/common/log.h"
#include "red/report/json.h"
#include "red/store/io.h"

namespace red::bench {

inline void print_header(const std::string& title, const std::string& paper_reference) {
  std::cout << "==============================================================\n"
            << title << '\n'
            << "Paper reference: " << paper_reference << '\n'
            << "==============================================================\n";
}

inline void print_section(const std::string& name) { std::cout << "\n--- " << name << " ---\n"; }

using Clock = std::chrono::steady_clock;

inline double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// One timed benchmark row of a BENCH_*.json report.
struct Entry {
  std::string name;
  double real_time_ms = 0.0;    ///< best (minimum) time over `iterations` runs
  std::int64_t iterations = 1;  ///< timed repetitions real_time_ms is the best of
  double wall_ms = -1.0;        ///< total wall-clock across all runs (< 0: unrecorded -> null)
  std::int64_t peak_rss_bytes = -1;  ///< < 0: stamped from the platform at emit time
};

/// Peak resident set size of this process in bytes, or -1 where the platform
/// cannot report it. Monotonic over the process lifetime (it is a high-water
/// mark), so a reading at emit time bounds every entry in the report.
inline std::int64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return -1;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;  // kilobytes on Linux
#endif
#else
  return -1;
#endif
}

/// Durably write a finished BENCH_*.json document (temp + fsync + rename via
/// store::write_file_atomic): a bench killed mid-emit can never leave a torn
/// report for the comparison tooling to choke on. Returns false (after
/// printing the error) instead of throwing so benches keep their exit-code
/// convention.
inline bool write_report_file(const std::string& path, const std::string& content) {
  try {
    store::write_file_atomic(path, content);
  } catch (const std::exception& e) {
    log_error("cannot write " + path + ": " + e.what());
    return false;
  }
  std::cout << "\nWrote " << path << "\n";
  return true;
}

/// Emit the `"benchmarks": [...]` array (without the key) to `os`, doubles
/// at full round-trip precision via report::json_number. Every row carries
/// memory alongside time: `peak_rss_bytes` is stamped from the platform's
/// high-water mark at emit time when the bench did not record one, `null`
/// where the platform can't report RSS; `wall_ms` is the entry's total
/// wall-clock when recorded, `null` otherwise.
inline void write_benchmark_array(std::ostream& os, const std::vector<Entry>& entries) {
  const std::int64_t emit_rss = peak_rss_bytes();
  os << "[\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::int64_t rss = entries[i].peak_rss_bytes >= 0 ? entries[i].peak_rss_bytes : emit_rss;
    os << "    {\"name\": \"" << entries[i].name << "\", \"real_time_ms\": "
       << report::json_number(entries[i].real_time_ms)
       << ", \"iterations\": " << entries[i].iterations << ", \"wall_ms\": "
       << (entries[i].wall_ms >= 0.0 ? report::json_number(entries[i].wall_ms) : "null")
       << ", \"peak_rss_bytes\": "
       << (rss >= 0 ? report::json_number(static_cast<double>(rss)) : "null") << "}"
       << (i + 1 < entries.size() ? ",\n" : "\n");
  }
  os << "  ]";
}

}  // namespace red::bench
