// Shared helpers for the figure and perf benches: headers, wall-clock
// timing, and the BENCH_*.json benchmark-entry scaffolding.
#pragma once

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "red/report/json.h"

namespace red::bench {

inline void print_header(const std::string& title, const std::string& paper_reference) {
  std::cout << "==============================================================\n"
            << title << '\n'
            << "Paper reference: " << paper_reference << '\n'
            << "==============================================================\n";
}

inline void print_section(const std::string& name) { std::cout << "\n--- " << name << " ---\n"; }

using Clock = std::chrono::steady_clock;

inline double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// One timed benchmark row of a BENCH_*.json report.
struct Entry {
  std::string name;
  double real_time_ms = 0.0;    ///< best (minimum) time over `iterations` runs
  std::int64_t iterations = 1;  ///< timed repetitions real_time_ms is the best of
};

/// Emit the `"benchmarks": [...]` array (without the key) to `os`, doubles
/// at full round-trip precision via report::json_number.
inline void write_benchmark_array(std::ostream& os, const std::vector<Entry>& entries) {
  os << "[\n";
  for (std::size_t i = 0; i < entries.size(); ++i)
    os << "    {\"name\": \"" << entries[i].name << "\", \"real_time_ms\": "
       << report::json_number(entries[i].real_time_ms)
       << ", \"iterations\": " << entries[i].iterations << "}"
       << (i + 1 < entries.size() ? ",\n" : "\n");
  os << "  ]";
}

}  // namespace red::bench
