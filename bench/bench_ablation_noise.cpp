// Ablation — device non-idealities (beyond the paper, which assumes ideal
// cells): output error of the RED data flow vs programming noise, stuck-at
// fault rate, and ADC resolution.
//
// The per-seed sweeps run through the Monte Carlo variation engine
// (sim/montecarlo.h): the clean design is programmed once, trials reprogram
// only the variation deltas and fan out across the thread pool, and the
// engine surfaces the real VariationStats (perturbed / stuck cell counts)
// of every trial's programmed crossbars.
//
// Flags: --trials N (default 5)  --threads N (default 4)  --smoke (tiny grid)
#include <iostream>

#include "bench_util.h"
#include "red/common/flags.h"
#include "red/common/rng.h"
#include "red/common/string_util.h"
#include "red/common/table.h"
#include "red/core/designs.h"
#include "red/nn/deconv_reference.h"
#include "red/sim/montecarlo.h"
#include "red/tensor/tensor_ops.h"
#include "red/workloads/generator.h"

int main(int argc, char** argv) {
  using namespace red;
  const Flags flags = Flags::parse(argc - 1, argv + 1);
  const bool smoke = flags.get_bool("smoke");
  const int trials = static_cast<int>(flags.get_int("trials", smoke ? 2 : 5));
  const int threads = static_cast<int>(flags.get_int("threads", 4));

  bench::print_header("Ablation: device variation / faults / ADC resolution",
                      "extension — the paper assumes ideal devices");

  const nn::DeconvLayerSpec spec{"noise_probe", 6, 6, 16, 8, 4, 4, 2, 1, 0};
  Rng rng(2024);
  const auto input = workloads::make_input(spec, rng, 1, 7);
  const auto kernel = workloads::make_kernel(spec, rng, -30, 30);
  const auto golden = nn::deconv_reference(spec, input, kernel);

  sim::MonteCarloOptions opts;
  opts.trials = trials;
  opts.base_seed = 1;
  opts.threads = threads;

  bench::print_section("programming noise (level sigma), RED, normalized RMSE over " +
                       std::to_string(trials) + " trials");
  {
    TextTable t({"sigma", "NRMSE", "perturbed cells/trial", "of cells"});
    const std::vector<double> sigmas =
        smoke ? std::vector<double>{0.0, 0.4} : std::vector<double>{0.0, 0.1, 0.2, 0.4, 0.8, 1.6};
    std::vector<xbar::VariationModel> grid;
    for (double sigma : sigmas) {
      xbar::VariationModel var;
      var.level_sigma = sigma;
      grid.push_back(var);
    }
    const auto sweep = sim::run_monte_carlo_grid(core::DesignKind::kRed, {}, grid, spec,
                                                 input, kernel, golden, opts);
    for (std::size_t i = 0; i < sigmas.size(); ++i) {
      const auto& mc = sweep[i];
      const auto cells_per_trial =
          static_cast<double>(mc.variation_total().cells) / static_cast<double>(trials);
      t.add_row({format_double(sigmas[i], 2), format_percent(mc.mean_nrmse(), 2),
                 format_double(mc.mean_perturbed_cells(), 1),
                 format_percent(mc.mean_perturbed_cells() / cells_per_trial, 1)});
    }
    std::cout << t.to_ascii();
  }

  bench::print_section("stuck-at fault rate, RED vs zero-padding (same fault process)");
  {
    TextTable t({"fault rate", "RED NRMSE", "ZP NRMSE", "RED stuck cells/trial"});
    const std::vector<double> rates =
        smoke ? std::vector<double>{0.0, 0.01} : std::vector<double>{0.0, 0.001, 0.01, 0.05, 0.1};
    std::vector<xbar::VariationModel> grid;
    for (double rate : rates) {
      xbar::VariationModel var;
      var.stuck_at_rate = rate;
      grid.push_back(var);
    }
    const auto red = sim::run_monte_carlo_grid(core::DesignKind::kRed, {}, grid, spec, input,
                                               kernel, golden, opts);
    const auto zp = sim::run_monte_carlo_grid(core::DesignKind::kZeroPadding, {}, grid, spec,
                                              input, kernel, golden, opts);
    for (std::size_t i = 0; i < rates.size(); ++i)
      t.add_row({format_percent(rates[i], 1), format_percent(red[i].mean_nrmse(), 2),
                 format_percent(zp[i].mean_nrmse(), 2),
                 format_double(red[i].mean_stuck_cells(), 1)});
    std::cout << t.to_ascii();
  }

  bench::print_section("clipped ADC resolution (bit-accurate path), RED");
  {
    TextTable t({"ADC bits", "NRMSE", "exact?"});
    const std::vector<int> bit_grid =
        smoke ? std::vector<int>{5, 8} : std::vector<int>{4, 5, 6, 7, 8, 9, 10};
    for (int bits : bit_grid) {
      arch::DesignConfig cfg;
      cfg.bit_accurate = true;
      cfg.quant.adc = {xbar::AdcMode::kClipped, bits};
      const auto red = core::make_design(core::DesignKind::kRed, cfg);
      const auto out = red->run(spec, input, kernel);
      const double err = normalized_rmse(golden, out);
      t.add_row({std::to_string(bits), format_percent(err, 3), err == 0.0 ? "yes" : "no"});
    }
    std::cout << t.to_ascii();
  }
  return 0;
}
