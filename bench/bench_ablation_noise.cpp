// Ablation — device non-idealities (beyond the paper, which assumes ideal
// cells): output error of the RED data flow vs programming noise, stuck-at
// fault rate, and ADC resolution.
#include <iostream>

#include "bench_util.h"
#include "red/common/rng.h"
#include "red/common/string_util.h"
#include "red/common/table.h"
#include "red/core/designs.h"
#include "red/nn/deconv_reference.h"
#include "red/tensor/tensor_ops.h"
#include "red/workloads/generator.h"

int main() {
  using namespace red;
  bench::print_header("Ablation: device variation / faults / ADC resolution",
                      "extension — the paper assumes ideal devices");

  const nn::DeconvLayerSpec spec{"noise_probe", 6, 6, 16, 8, 4, 4, 2, 1, 0};
  Rng rng(2024);
  const auto input = workloads::make_input(spec, rng, 1, 7);
  const auto kernel = workloads::make_kernel(spec, rng, -30, 30);
  const auto golden = nn::deconv_reference(spec, input, kernel);

  bench::print_section("programming noise (level sigma), RED, normalized RMSE over 5 seeds");
  {
    TextTable t({"sigma", "NRMSE", "perturbed cells"});
    for (double sigma : {0.0, 0.1, 0.2, 0.4, 0.8, 1.6}) {
      double err = 0;
      std::int64_t perturbed = 0;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        arch::DesignConfig cfg;
        cfg.quant.variation.level_sigma = sigma;
        cfg.quant.variation.seed = seed;
        const auto red = core::make_design(core::DesignKind::kRed, cfg);
        err += normalized_rmse(golden, red->run(spec, input, kernel)) / 5.0;
        (void)perturbed;
      }
      t.add_row({format_double(sigma, 2), format_percent(err, 2), sigma == 0.0 ? "0" : "-"});
    }
    std::cout << t.to_ascii();
  }

  bench::print_section("stuck-at fault rate, RED vs zero-padding (same devices)");
  {
    TextTable t({"fault rate", "RED NRMSE", "ZP NRMSE"});
    for (double rate : {0.0, 0.001, 0.01, 0.05, 0.1}) {
      double err_red = 0, err_zp = 0;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        arch::DesignConfig cfg;
        cfg.quant.variation.stuck_at_rate = rate;
        cfg.quant.variation.seed = seed;
        err_red += normalized_rmse(golden,
                                   core::make_design(core::DesignKind::kRed, cfg)
                                       ->run(spec, input, kernel)) /
                   5.0;
        err_zp += normalized_rmse(golden,
                                  core::make_design(core::DesignKind::kZeroPadding, cfg)
                                      ->run(spec, input, kernel)) /
                  5.0;
      }
      t.add_row({format_percent(rate, 1), format_percent(err_red, 2),
                 format_percent(err_zp, 2)});
    }
    std::cout << t.to_ascii();
  }

  bench::print_section("clipped ADC resolution (bit-accurate path), RED");
  {
    TextTable t({"ADC bits", "NRMSE", "exact?"});
    for (int bits : {4, 5, 6, 7, 8, 9, 10}) {
      arch::DesignConfig cfg;
      cfg.bit_accurate = true;
      cfg.quant.adc = {xbar::AdcMode::kClipped, bits};
      const auto red = core::make_design(core::DesignKind::kRed, cfg);
      const auto out = red->run(spec, input, kernel);
      const double err = normalized_rmse(golden, out);
      t.add_row({std::to_string(bits), format_percent(err, 3), err == 0.0 ? "yes" : "no"});
    }
    std::cout << t.to_ascii();
  }
  return 0;
}
