// Fault-injection campaign benchmark: graceful-degradation curves for the
// zero-padding and RED designs under a swept fault rate, emitted as
// BENCH_fault.json. Run through tools/run_bench.sh, or directly:
//
//   bench_fault [--quick] [--out BENCH_fault.json] [--trials N] [--threads N]
//
// The bench is gated on the subsystem's two hard guarantees rather than on
// timing: (1) the zero-fault-rate campaign point is bit-identical to the
// fault-free oracle on both arms, and (2) the repaired arm's mean output MSE
// is no worse than the unrepaired arm's at EVERY swept rate. A gate failure
// exits non-zero, so the bench doubles as the robustness acceptance test the
// CI smoke label runs.
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "red/common/flags.h"
#include "red/common/rng.h"
#include "red/common/string_util.h"
#include "red/fault/campaign.h"
#include "red/fault/inject.h"
#include "red/workloads/benchmarks.h"
#include "red/workloads/generator.h"

int main(int argc, char** argv) {
  using namespace red;
  using bench::Clock;
  using bench::Entry;
  using bench::ms_since;
  const Flags flags = Flags::parse(argc - 1, argv + 1);
  const bool quick = flags.get_bool("quick");
  const std::string out_path = flags.get_string("out", "BENCH_fault.json");
  const int trials = static_cast<int>(flags.get_int("trials", quick ? 2 : 3));
  const int threads = static_cast<int>(flags.get_int("threads", 4));

  bench::print_header("Fault-injection campaigns: graceful degradation under repair",
                      "fault extension — see docs/PERFORMANCE.md");

  const auto layer = workloads::table1_reduced(quick ? 8 : 4)[0];
  const std::vector<double> rates =
      quick ? std::vector<double>{0.0, 0.01, 0.05}
            : std::vector<double>{0.0, 0.002, 0.01, 0.05};

  // Every fault class scales with the swept rate, so the zero point is a
  // fully clean model (the oracle-equivalence gate) and every later point
  // exercises stuck cells, line faults, and drift together.
  std::vector<fault::FaultModel> models;
  for (double r : rates) {
    fault::FaultModel m;
    m.sa0_rate = r / 2.0;
    m.sa1_rate = r / 2.0;
    m.wordline_rate = r / 2.0;
    m.bitline_rate = r / 2.0;
    m.drift_sigma = r > 0.0 ? 0.3 : 0.0;
    models.push_back(m);
  }

  fault::RepairPolicy policy;
  policy.spare_rows = 4;
  policy.spare_cols = 4;
  policy.remap_rows = true;
  policy.verify_retries = 2;

  fault::FaultCampaignOptions opts;
  opts.trials = trials;
  opts.base_seed = 1;
  opts.threads = threads;

  Rng rng(1);
  const auto input = workloads::make_input(layer, rng, 1, 7);
  const auto kernel = workloads::make_kernel(layer, rng, -7, 7);

  struct KindRun {
    std::string kind;
    double wall_ms = 0.0;
    std::vector<fault::FaultCampaignPoint> points;
  };
  std::vector<KindRun> kind_runs;
  std::vector<Entry> entries;

  for (const auto kind : {core::DesignKind::kZeroPadding, core::DesignKind::kRed}) {
    KindRun run;
    run.kind = core::kind_to_name(kind);
    const auto t0 = Clock::now();
    run.points = fault::run_fault_campaign(kind, arch::DesignConfig{}, models, policy, layer,
                                           input, kernel, opts);
    run.wall_ms = ms_since(t0);
    entries.push_back({"BM_FaultCampaign_" + run.kind, run.wall_ms, 1, run.wall_ms});
    kind_runs.push_back(std::move(run));
  }

  // Gate 1: zero fault rate must be indistinguishable from the oracle on
  // BOTH arms of every trial — bit-for-bit, not approximately.
  bool zero_rate_exact = true;
  // Gate 2: repair never hurts — mean repaired MSE <= mean unrepaired MSE at
  // every swept rate.
  bool repaired_not_worse = true;
  for (const auto& run : kind_runs) {
    for (std::size_t i = 0; i < rates.size(); ++i) {
      const auto& p = run.points[i];
      if (rates[i] == 0.0)
        for (const auto& t : p.trials)
          zero_rate_exact &= t.unrepaired.score.exact() && t.repaired.score.exact();
      repaired_not_worse &= p.repaired_not_worse();
    }
  }

  for (const auto& run : kind_runs) {
    bench::print_section(run.kind + " degradation (" + std::to_string(trials) + " trials)");
    for (std::size_t i = 0; i < rates.size(); ++i) {
      const auto& p = run.points[i];
      std::cout << "  rate " << format_double(rates[i], 4) << ": bare SNR "
                << format_double(p.mean_snr_db(false), 1) << " dB -> repaired "
                << format_double(p.mean_snr_db(true), 1) << " dB ("
                << format_double(p.mean_bit_errors(true), 1) << " bit errs/img)\n";
    }
  }
  std::cout << "\ngates: zero-rate oracle equivalence "
            << (zero_rate_exact ? "PASS" : "FAIL") << ", repaired never worse "
            << (repaired_not_worse ? "PASS" : "FAIL") << '\n';

  std::ostringstream out;
  out << "{\n  \"context\": {\"layer\": \"" << layer.name << "\", \"trials\": " << trials
      << ", \"threads\": " << threads << ", \"quick\": " << (quick ? "true" : "false")
      << "},\n  \"benchmarks\": ";
  bench::write_benchmark_array(out, entries);
  out << ",\n  \"gates\": {\"zero_rate_oracle_exact\": "
      << (zero_rate_exact ? "true" : "false")
      << ", \"repaired_not_worse_at_every_rate\": "
      << (repaired_not_worse ? "true" : "false") << "},\n  \"degradation\": [\n";
  bool first = true;
  for (const auto& run : kind_runs)
    for (std::size_t i = 0; i < rates.size(); ++i) {
      const auto& p = run.points[i];
      const auto& rep = p.trials.front().repaired.repair;
      out << (first ? "" : ",\n") << "    {\"design\": \"" << run.kind
          << "\", \"rate\": " << report::json_number(rates[i])
          << ", \"unrepaired_mse\": " << report::json_number(p.mean_mse(false))
          << ", \"unrepaired_snr_db\": " << report::json_number(p.mean_snr_db(false))
          << ", \"repaired_mse\": " << report::json_number(p.mean_mse(true))
          << ", \"repaired_snr_db\": " << report::json_number(p.mean_snr_db(true))
          << ", \"repaired_bit_errors\": " << report::json_number(p.mean_bit_errors(true))
          << ", \"spare_rows_used\": " << rep.spare_rows_used
          << ", \"spare_cols_used\": " << rep.spare_cols_used
          << ", \"rows_remapped\": " << rep.rows_remapped << "}";
      first = false;
    }
  out << "\n  ]\n}\n";
  if (!bench::write_report_file(out_path, out.str())) return 1;

  if (!zero_rate_exact || !repaired_not_worse) {
    red::log_error("a fault-campaign gate failed");
    return 1;
  }
  return 0;
}
