// Fig. 4 — zero-redundancy ratio of the zero-padding deconvolution vs stride.
//
// Paper anchors: 86.8% at stride 2 and 99.8% at stride 32 (SNGAN curve).
#include <iostream>

#include "bench_util.h"
#include "red/common/string_util.h"
#include "red/nn/redundancy.h"
#include "red/report/figures.h"

int main() {
  using namespace red;
  bench::print_header("Fig. 4: zero redundancy ratio vs stride",
                      "86.8% @ stride 2, 99.8% @ stride 32");
  const std::vector<int> strides{1, 2, 4, 8, 16, 32};
  std::cout << report::fig4_redundancy(strides).to_ascii();

  bench::print_section("ASCII plot (70%..100% axis, as in the paper)");
  nn::DeconvLayerSpec sngan{"SNGAN", 4, 4, 1, 1, 4, 4, 2, 1, 0};
  nn::DeconvLayerSpec fcn{"FCN", 16, 16, 1, 1, 4, 4, 2, 0, 0};
  for (const auto& base : {sngan, fcn}) {
    std::cout << base.name << ":\n";
    for (const auto& p : nn::redundancy_vs_stride(base, strides)) {
      const double scaled = (p.ratio - 0.70) / 0.30;  // map 70%..100% onto the bar
      std::cout << "  s=" << p.stride << (p.stride < 10 ? " " : "") << " |"
                << ascii_bar(scaled, 1.0, 40) << "| " << format_percent(p.ratio, 2) << '\n';
    }
  }

  bench::print_section("paper anchor check");
  std::cout << "stride 2 (SNGAN): " << format_percent(nn::zero_redundancy_ratio(sngan), 2)
            << " (paper: 86.8%)\n";
  sngan.stride = 32;
  std::cout << "stride 32 (SNGAN): " << format_percent(nn::zero_redundancy_ratio(sngan), 2)
            << " (paper: 99.8%)\n";
  return 0;
}
