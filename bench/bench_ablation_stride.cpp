// Ablation — stride sweep: RED's cycle reduction is stride^2 (Sec. III-C:
// "the speed-up brought by RED quadratically increases with the stride"),
// while the realized speedup saturates once per-cycle overheads and folding
// kick in. Complements Fig. 4's redundancy growth.
#include <iostream>

#include "bench_util.h"
#include "red/common/string_util.h"
#include "red/common/table.h"
#include "red/core/red_design.h"
#include "red/nn/redundancy.h"
#include "red/report/evaluation.h"

int main() {
  using namespace red;
  bench::print_header("Ablation: stride sweep",
                      "speedup ~ stride^2 (Sec. III-C); redundancy per Fig. 4");

  TextTable t({"stride", "kernel", "fold", "redundancy", "ZP/RED cycles", "RED speedup",
               "RED energy saving"});
  for (int s : {1, 2, 4, 8}) {
    // FCN-style layer: kernel = 2*stride (classic bilinear up-sampling size),
    // 21 classes, 16x16 input.
    nn::DeconvLayerSpec spec{"sweep_s" + std::to_string(s), 16, 16, 21, 21,
                             std::max(2, 2 * s), std::max(2, 2 * s), s, 0, 0};
    spec.validate();
    arch::DesignConfig cfg;
    const core::RedDesign red(cfg);
    const auto c = report::compare_layer(spec, cfg);
    const auto zp_cycles = c.zero_padding.cycles();
    const auto red_cycles = c.red.cycles();
    t.add_row({std::to_string(s), std::to_string(spec.kh) + "x" + std::to_string(spec.kw),
               std::to_string(red.fold_for(spec)),
               format_percent(nn::zero_redundancy_ratio(spec), 1),
               format_double(static_cast<double>(zp_cycles) / static_cast<double>(red_cycles), 1) +
                   "x",
               format_speedup(c.red_speedup_vs_zp()),
               format_percent(c.red_energy_saving_vs_zp(), 1)});
  }
  std::cout << t.to_ascii();

  bench::print_section("GAN-style stride sweep (kernel 4x4, pad 1, 64->128 channels)");
  TextTable g({"stride", "RED speedup", "ideal s^2/fold"});
  for (int s : {1, 2, 3, 4}) {
    nn::DeconvLayerSpec spec{"gan_s" + std::to_string(s), 8, 8, 64, 128, 4, 4, s, 1, 0};
    if (spec.oh() < 1) continue;
    spec.validate();
    arch::DesignConfig cfg;
    const auto c = report::compare_layer(spec, cfg);
    const int fold = core::RedDesign(cfg).fold_for(spec);
    g.add_row({std::to_string(s), format_speedup(c.red_speedup_vs_zp()),
               format_double(static_cast<double>(s) * s / fold, 1) + "x"});
  }
  std::cout << g.to_ascii();
  return 0;
}
