#!/bin/sh
# Local mirror of the CI lint job: red_lint over the repo against the
# checked-in baseline, then clang-tidy (when installed) against its own
# baseline. Run from anywhere; exits non-zero exactly when CI would fail.
#
# Usage: tools/run_lint.sh [build-dir]
#   build-dir defaults to ./build; it is created/configured if missing
#   (clang-tidy needs its compile_commands.json).
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD="${1:-$ROOT/build}"

# --- red_lint ---------------------------------------------------------------
if [ ! -x "$BUILD/red_lint" ]; then
  cmake -B "$BUILD" -S "$ROOT" > /dev/null
  cmake --build "$BUILD" --target red_lint > /dev/null
fi
"$BUILD/red_lint" --root "$ROOT"

# --- clang-tidy (optional locally, enforced in CI) --------------------------
if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "run_lint: clang-tidy not installed; skipping (CI runs it)"
  exit 0
fi
if [ ! -f "$BUILD/compile_commands.json" ]; then
  cmake -B "$BUILD" -S "$ROOT" > /dev/null  # exports compile_commands.json
fi

# clang-tidy output is filtered against a count-free baseline of known
# findings (exact "file:line: warning: ... [check]" shape is too brittle
# across versions, so the baseline keys on "path [check-name]" pairs).
TIDY_OUT=$(mktemp)
trap 'rm -f "$TIDY_OUT"' EXIT
find "$ROOT/src" "$ROOT/tools" -name '*.cpp' | sort | \
  xargs clang-tidy -p "$BUILD" --quiet 2> /dev/null | \
  grep -E "warning:.*\[[a-z]+-" | \
  sed -E "s|^$ROOT/||; s|:[0-9]+:[0-9]+: warning: .* (\[[a-z0-9,-]+\])\$| \1|" | \
  sort -u > "$TIDY_OUT" || true

NEW=$(comm -23 "$TIDY_OUT" "$ROOT/tools/clang_tidy_baseline.txt" || true)
if [ -n "$NEW" ]; then
  echo "run_lint: new clang-tidy finding(s):"
  echo "$NEW"
  exit 1
fi
echo "run_lint: clang-tidy clean against baseline"
