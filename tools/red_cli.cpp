// red_cli — command-line front end to the RED simulator.
//
//   red_cli layer   --ih 8 --iw 8 --c 512 --m 256 --k 4 --stride 2 --pad 1
//                   [--opad N] [--design zp|pf|red] [--fold N] [--mux N]
//                   [--tiled] [--subarray N] [--breakdown] [--run]
//   red_cli compare --layer GAN_Deconv1 | --ih ... (all three designs)
//   red_cli conv    --ih 64 --iw 64 --c 3 --m 128 --k 5 --stride 2 --pad 2
//   red_cli network --net dcgan|sngan|fcn8s [--design ...]
//   red_cli plan    --net dcgan [--design ...] [--chip] [--json] [--out FILE]
//   red_cli table1 | fig4
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "red/arch/chip.h"
#include "red/arch/conv_engine.h"
#include "red/common/error.h"
#include "red/common/log.h"
#include "red/plan/plan.h"
#include "red/common/flags.h"
#include "red/common/rng.h"
#include "red/common/string_util.h"
#include "red/core/designs.h"
#include "red/explore/sweep.h"
#include "red/fault/campaign.h"
#include "red/nn/deconv_reference.h"
#include "red/opt/optimizer.h"
#include "red/opt/pareto.h"
#include "red/report/evaluation.h"
#include "red/report/figures.h"
#include "red/core/red_design.h"
#include "red/report/export.h"
#include "red/report/json.h"
#include "red/sim/engine.h"
#include "red/sim/pipeline.h"
#include "red/store/interrupt.h"
#include "red/store/io.h"
#include "red/store/result_store.h"
#include "red/sim/streaming.h"
#include "red/sim/trace.h"
#include "red/sim/verifier.h"
#include "red/telemetry/metrics.h"
#include "red/telemetry/tracer.h"
#include "red/tensor/tensor_ops.h"
#include "red/workloads/benchmarks.h"
#include "red/workloads/generator.h"
#include "red/workloads/networks.h"

namespace {

using namespace red;

void usage() {
  std::cout <<
      R"(red_cli — RED deconvolution-accelerator simulator

commands:
  layer     evaluate one deconv layer on one design
  compare   evaluate one deconv layer on all three designs
  conv      evaluate a regular conv layer on the shared conv engine
  network   evaluate a whole deconv stack (dcgan | sngan | fcn8s)
  plan      compile the mapping plan of a stack (--net) or one layer and
            print it; always round-trips through JSON and verifies the
            fingerprint [--chip [--banks N] [--bank-subarrays N]]
            [--json] [--out FILE]
  throughput  stream a batch through a programmed stack [--images N]
              [--div N] [--threads N] [--no-check] (reports fill, interval, img/s)
  sweep     Pareto grid over fold x mux [--folds 1,2,4,8] [--muxes 4,8,16] [--threads N]
            [--store FILE]  (persistent evaluation cache, shared with optimize)
            [--json] [--out FILE]  (full SweepStats + StoreReport counters)
  faults    deterministic fault-injection campaign with graceful-degradation
            curves [--rates 0,0.001,0.01] [--wl-rate R] [--bl-rate R]
            [--drift S] [--trials N] [--seed N] [--threads N]
            [--spares N | --spare-rows N --spare-cols N] [--remap]
            [--retries N] [--json] [--out FILE]
  optimize  design-space search over declared axes; prints the Pareto frontier
            [--net NAME | --layer NAME | geometry] [--design zp|pf|red|all]
            [--folds L] [--muxes L] [--tile-sides L] [--adc-bits L]
            [--weight-bits L] [--activation-bits L] [--spare-lines L]
            [--lookaheads L] [--lookasides L]
            [--strategy exhaustive|anneal|evolve] [--objective latency,area]
            [--weights L] [--budget N] [--seed N] [--threads N]
            [--chip-fit [--banks N] [--bank-subarrays N]] [--max-sc N]
            [--max-area MM2] [--max-energy UJ] [--min-fault-snr DB]
            [--checkpoint FILE [--checkpoint-every N]] [--store FILE]
            [--shard I/N] [--timeout MS] [--json] [--out FILE]
            SIGINT/SIGTERM or --timeout checkpoint and exit 7 at the next
            batch boundary; rerun with the same --checkpoint to resume
  merge-checkpoints  fuse shard checkpoint files into one resumable
            checkpoint: merge-checkpoints CKPT... --out MERGED plus the
            exact space/objective/strategy flags the shards ran with;
            corrupt or mismatched shards are quarantined, not fatal
            [--json] [--out FILE]
  verify    run all designs functionally and check vs golden + activity model
  trace     print the zero-skipping schedule (Fig. 5(c) style) [--cycles N]
  export    write every table/figure to files [--out DIR] [--format csv|md|txt]
  table1    print the Table I benchmarks
  fig4      print the Fig. 4 redundancy curves

common flags:
  --ih --iw --c --m --k (--kh --kw) --stride --pad --opad   layer geometry
  --layer <Table-I name>                                    use a benchmark layer
  --design zp|pf|red      design to evaluate (default red)
  --fold N --mux N        RED fold override / mux ratio
  --lookahead H --lookaside D   Bit-Tactical schedule promotion (0 = off;
                          both > 0 coalesce fold phases by 1+min(H,D))
  --tiled [--subarray N]  price bounded physical subarrays
  --breakdown             per-component Table II breakdown
  --run                   also execute functionally and verify vs golden

observability (every command; strictly observe-only, results stay bit-identical):
  --metrics FILE          write a metrics snapshot (JSON) and, in text mode,
                          print the metrics table after the command output
  --trace FILE            write a Chrome trace-event JSON (load in Perfetto)
  --log-timestamps        prefix log lines with monotonic elapsed ms
  RED_LOG_LEVEL           env: debug | info | warn | error (unknown = config error)

exit codes:
  0 ok            1 usage             2 internal error   3 verification failed
  4 bad config    5 artifact mismatch 6 I/O error        7 interrupted (checkpointed)
)";
}

/// Write a result document to --out durably (temp + fsync + rename): a
/// crash mid-write can never leave a torn artifact behind.
void write_out_file(const Flags& flags, const std::string& content, bool json_mode) {
  const std::string path = flags.get_string("out");
  store::write_file_atomic(path, content);
  (json_mode ? std::cerr : std::cout) << "wrote " << path << '\n';
}

arch::DesignConfig config_from(const Flags& flags) {
  arch::DesignConfig cfg;
  cfg.mux_ratio = static_cast<int>(flags.get_int("mux", cfg.mux_ratio));
  cfg.red_fold = static_cast<int>(flags.get_int("fold", 0));
  cfg.lookahead_h = static_cast<int>(flags.get_int("lookahead", 0));
  cfg.lookaside_d = static_cast<int>(flags.get_int("lookaside", 0));
  cfg.tiled = flags.get_bool("tiled");
  const auto side = flags.get_int("subarray", 128);
  cfg.tiling = {side, side};
  cfg.quant.abits = static_cast<int>(flags.get_int("abits", cfg.quant.abits));
  cfg.quant.wbits = static_cast<int>(flags.get_int("wbits", cfg.quant.wbits));
  // Fault environment + mitigation provision (shared by `faults` campaigns
  // and the optimize min_fault_snr constraint).
  cfg.fault.model.sa0_rate = flags.get_double("sa0", 0.0);
  cfg.fault.model.sa1_rate = flags.get_double("sa1", 0.0);
  cfg.fault.model.wordline_rate = flags.get_double("wl-rate", 0.0);
  cfg.fault.model.bitline_rate = flags.get_double("bl-rate", 0.0);
  cfg.fault.model.drift_sigma = flags.get_double("drift", 0.0);
  const auto spares = flags.get_int("spares", 0);
  cfg.fault.repair.spare_rows = static_cast<int>(flags.get_int("spare-rows", spares));
  cfg.fault.repair.spare_cols = static_cast<int>(flags.get_int("spare-cols", spares));
  cfg.fault.repair.remap_rows = flags.get_bool("remap");
  cfg.fault.repair.verify_retries = static_cast<int>(flags.get_int("retries", 0));
  return cfg;
}

core::DesignKind kind_from(const Flags& flags) {
  return core::kind_from_name(flags.get_string("design", "red"));
}

nn::DeconvLayerSpec layer_from(const Flags& flags) {
  if (flags.has("layer")) {
    const std::string name = flags.get_string("layer");
    for (const auto& l : workloads::table1_benchmarks())
      if (l.name == name) return l;
    throw ConfigError("unknown --layer '" + name + "' (see `red_cli table1`)");
  }
  nn::DeconvLayerSpec spec;
  spec.name = "cli_layer";
  spec.ih = static_cast<int>(flags.get_int("ih", 8));
  spec.iw = static_cast<int>(flags.get_int("iw", spec.ih));
  spec.c = static_cast<int>(flags.get_int("c", 64));
  spec.m = static_cast<int>(flags.get_int("m", 64));
  spec.kh = static_cast<int>(flags.get_int("kh", flags.get_int("k", 4)));
  spec.kw = static_cast<int>(flags.get_int("kw", flags.get_int("k", 4)));
  spec.stride = static_cast<int>(flags.get_int("stride", 2));
  spec.pad = static_cast<int>(flags.get_int("pad", 1));
  spec.output_pad = static_cast<int>(flags.get_int("opad", 0));
  spec.validate();
  return spec;
}

void print_cost(const arch::CostReport& cost, bool breakdown) {
  std::cout << cost.design() << ": " << cost.cycles() << " cycles, "
            << format_double(cost.total_latency().value() / 1e3, 3) << " us, "
            << format_double(cost.total_energy().value() / 1e6, 4) << " uJ, "
            << format_double(cost.total_area().value() / 1e6, 4) << " mm^2\n";
  if (breakdown) std::cout << report::component_breakdown(cost).to_ascii();
}

int cmd_layer(const Flags& flags) {
  const auto spec = layer_from(flags);
  const auto cfg = config_from(flags);
  const auto design = core::make_design(kind_from(flags), cfg);
  std::cout << spec.to_string() << '\n';
  print_cost(design->cost(spec), flags.get_bool("breakdown"));
  if (flags.get_bool("run")) {
    Rng rng(1);
    const auto input = workloads::make_input(spec, rng, 1, 7);
    const auto kernel = workloads::make_kernel(spec, rng, -7, 7);
    const auto result = sim::simulate(*design, spec, input, kernel, /*check=*/true);
    const bool exact =
        first_mismatch(nn::deconv_reference(spec, input, kernel), result.output).empty();
    std::cout << "functional: " << (exact ? "bit-exact vs golden" : "MISMATCH") << ", measured "
              << result.measured.cycles << " cycles\n";
  }
  return 0;
}

int cmd_compare(const Flags& flags) {
  const auto spec = layer_from(flags);
  const auto cfg = config_from(flags);
  const auto cmp = report::compare_layer(spec, cfg);
  if (flags.get_bool("json")) {
    std::cout << report::to_json(cmp);
    return 0;
  }
  std::cout << spec.to_string() << '\n';
  print_cost(cmp.zero_padding, false);
  print_cost(cmp.padding_free, false);
  print_cost(cmp.red, flags.get_bool("breakdown"));
  std::cout << "RED vs zero-padding: " << format_speedup(cmp.red_speedup_vs_zp())
            << " speedup, " << format_percent(cmp.red_energy_saving_vs_zp(), 1)
            << " energy saving, " << format_percent(cmp.red_area_overhead_vs_zp(), 1)
            << " area overhead\n";
  return 0;
}

int cmd_conv(const Flags& flags) {
  nn::ConvLayerSpec spec;
  spec.name = "cli_conv";
  spec.ih = static_cast<int>(flags.get_int("ih", 32));
  spec.iw = static_cast<int>(flags.get_int("iw", spec.ih));
  spec.c = static_cast<int>(flags.get_int("c", 64));
  spec.m = static_cast<int>(flags.get_int("m", 64));
  spec.kh = static_cast<int>(flags.get_int("kh", flags.get_int("k", 3)));
  spec.kw = static_cast<int>(flags.get_int("kw", flags.get_int("k", 3)));
  spec.stride = static_cast<int>(flags.get_int("stride", 1));
  spec.pad = static_cast<int>(flags.get_int("pad", 1));
  spec.validate();
  const arch::ConvEngine engine(config_from(flags));
  std::cout << spec.to_string() << '\n';
  print_cost(engine.cost(spec), flags.get_bool("breakdown"));
  return 0;
}

int cmd_sweep(const Flags& flags) {
  const auto spec = layer_from(flags);
  const auto base_cfg = config_from(flags);
  const auto kind = kind_from(flags);
  const int threads = static_cast<int>(flags.get_int("threads", 4));

  const auto folds = parse_int_list(flags.get_string("folds", "1,2,4,8"), "folds");
  const auto muxes = parse_int_list(flags.get_string("muxes", "4,8,16"), "muxes");

  std::vector<explore::SweepPoint> grid;
  for (std::int64_t fold : folds)
    for (std::int64_t mux : muxes) {
      explore::SweepPoint p;
      p.kind = kind;
      p.cfg = base_cfg;
      p.cfg.red_fold = static_cast<int>(fold);
      p.cfg.mux_ratio = static_cast<int>(mux);
      p.spec = spec;
      grid.push_back(p);
    }
  explore::SweepDriver driver(threads);
  std::shared_ptr<store::ResultStore> result_store;
  if (flags.has("store")) {
    result_store = std::make_shared<store::ResultStore>(flags.get_string("store"));
    driver.attach_store(result_store);
  }
  const auto outcomes = driver.evaluate(grid);

  std::vector<std::vector<double>> rows;
  for (const auto& o : outcomes)
    rows.push_back({o.cost.total_latency().value(), o.cost.total_area().value()});
  const auto pareto = opt::non_dominated_mask(rows);

  // Machine-readable twin of the table, carrying the full SweepStats (and
  // StoreReport when a store is attached) alongside every grid point.
  auto result_json = [&] {
    report::JsonWriter w(0);
    w.open();
    w.field("type", "red_sweep_result");
    w.field("layer", spec.name);
    w.field("design", core::kind_to_name(kind));
    w.field("threads", std::int64_t{threads});
    w.array("points");
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto& c = outcomes[i].cost;
      w.item_object();
      w.field("fold", std::int64_t{grid[i].cfg.red_fold});
      w.field("mux", std::int64_t{grid[i].cfg.mux_ratio});
      w.field("sc_units", std::int64_t{outcomes[i].activity.sc_units});
      w.field("cycles", c.cycles());
      w.field("latency_ns", c.total_latency().value());
      w.field("energy_pj", c.total_energy().value());
      w.field("area_um2", c.total_area().value());
      w.field("pareto", static_cast<bool>(pareto[i]));
      w.close(false);
    }
    w.close_array();
    const auto& st = driver.stats();
    w.object("stats");
    w.field("points", st.points);
    w.field("evaluated", st.evaluated);
    w.field("cache_hits", st.cache_hits);
    w.field("cached_entries", st.cached_entries);
    w.field("evictions", st.evictions);
    w.field("store_hits", st.store_hits);
    w.field("store_rejects", st.store_rejects);
    w.close(false);
    if (result_store != nullptr) {
      const auto rep = result_store->report();
      w.object("store");
      w.field("path", result_store->path());
      w.field("entries", result_store->entries());
      w.field("records_loaded", rep.records_loaded);
      w.field("records_quarantined", rep.records_quarantined);
      w.field("bytes_skipped", rep.bytes_skipped);
      w.field("appended", rep.appended);
      w.close(false);
    }
    w.close();
    return w.str();
  };

  const bool json_mode = flags.get_bool("json");
  if (json_mode) {
    std::cout << result_json();
  } else {
    std::cout << spec.to_string() << '\n';
    TextTable t({"fold", "mux", "sub-arrays", "cycles", "latency (us)", "energy (uJ)",
                 "area (mm^2)", "Pareto"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto& c = outcomes[i].cost;
      t.add_row({std::to_string(grid[i].cfg.red_fold), std::to_string(grid[i].cfg.mux_ratio),
                 std::to_string(outcomes[i].activity.sc_units),
                 std::to_string(outcomes[i].cost.cycles()),
                 format_double(c.total_latency().value() / 1e3, 2),
                 format_double(c.total_energy().value() / 1e6, 3),
                 format_double(c.total_area().value() / 1e6, 4), pareto[i] ? "*" : ""});
    }
    std::cout << t.to_ascii() << "sweep: " << driver.stats().evaluated << " evaluated, "
              << driver.stats().cache_hits << " from cache, " << driver.stats().store_hits
              << " from store, " << threads << " threads\n";
    if (result_store != nullptr)
      std::cout << "store: " << result_store->path() << " (" << result_store->entries()
                << " entries, " << result_store->report().appended << " appended)\n";
  }
  if (flags.has("out")) write_out_file(flags, result_json(), json_mode);
  return 0;
}

/// Build the search space an `optimize` run explores: base point from the
/// shared config flags, one axis per value-list flag. With no axis flags the
/// classic fold x mux grid is searched.
opt::SearchSpace space_from(const Flags& flags, const std::vector<nn::DeconvLayerSpec>& stack) {
  const std::string design = flags.get_string("design", "red");
  opt::SearchSpace space(stack, design == "all" ? core::DesignKind::kRed : kind_from(flags),
                         config_from(flags));
  if (design == "all")
    space.add_axis({opt::AxisField::kKind,
                    {static_cast<std::int64_t>(core::DesignKind::kZeroPadding),
                     static_cast<std::int64_t>(core::DesignKind::kPaddingFree),
                     static_cast<std::int64_t>(core::DesignKind::kRed)}});
  const struct {
    const char* flag;
    opt::AxisField field;
  } axis_flags[] = {{"folds", opt::AxisField::kRedFold},
                    {"muxes", opt::AxisField::kMuxRatio},
                    {"tile-sides", opt::AxisField::kSubarraySide},
                    {"adc-bits", opt::AxisField::kAdcBits},
                    {"weight-bits", opt::AxisField::kWeightBits},
                    {"activation-bits", opt::AxisField::kActivationBits},
                    {"spare-lines", opt::AxisField::kSpareLines},
                    {"lookaheads", opt::AxisField::kLookahead},
                    {"lookasides", opt::AxisField::kLookaside}};
  bool any = false;
  for (const auto& a : axis_flags)
    if (flags.has(a.flag)) {
      space.add_axis({a.field, parse_int_list(flags.get_string(a.flag), a.flag)});
      any = true;
    }
  if (!any) {
    space.add_axis({opt::AxisField::kRedFold, {1, 2, 4, 8}});
    space.add_axis({opt::AxisField::kMuxRatio, {4, 8, 16}});
  }
  return space;
}

/// Everything the optimize-family commands (`optimize`, `merge-checkpoints`)
/// reconstruct from the shared flags: workload, space, objective,
/// constraints, tuned options, and a ready optimizer. merge-checkpoints must
/// rebuild the exact search identity the shards ran with, so both commands
/// go through this one builder.
struct OptimizeSetup {
  std::vector<nn::DeconvLayerSpec> stack;
  std::string title;
  opt::OptimizerOptions options;
  std::unique_ptr<opt::Optimizer> optimizer;
};

OptimizeSetup optimize_setup_from(const Flags& flags) {
  OptimizeSetup s;
  // Workload: a whole stack (--net) or one layer (--layer / geometry).
  if (flags.has("net")) {
    const std::string net = flags.get_string("net");
    s.stack = workloads::named_stack(net, static_cast<int>(flags.get_int("div", 1)));
    s.title = net;
  } else {
    s.stack = {layer_from(flags)};
    s.title = s.stack.front().name;
  }

  opt::SearchSpace space = space_from(flags, s.stack);
  auto objective = opt::Objective::parse(flags.get_string("objective", "latency,area"),
                                         flags.get_string("weights", ""));

  std::vector<opt::Constraint> constraints;
  if (flags.get_bool("chip-fit")) {
    arch::ChipConfig chip;
    chip.banks = static_cast<int>(flags.get_int("banks", chip.banks));
    chip.subarrays_per_bank = flags.get_int("bank-subarrays", chip.subarrays_per_bank);
    const auto side = flags.get_int("subarray", 128);
    chip.subarray = {side, side};
    constraints.push_back(opt::fits_chip(chip));
  }
  if (flags.has("max-sc")) constraints.push_back(opt::max_sc_units(flags.get_int("max-sc", 0)));
  if (flags.has("max-area"))
    constraints.push_back(opt::max_area_mm2(flags.get_double("max-area", 0.0)));
  if (flags.has("max-energy"))
    constraints.push_back(opt::max_energy_uj(flags.get_double("max-energy", 0.0)));
  if (flags.has("min-fault-snr"))
    constraints.push_back(opt::min_fault_snr(flags.get_double("min-fault-snr", 0.0)));

  opt::OptimizerOptions& options = s.options;
  options.strategy = flags.get_string("strategy", "exhaustive");
  options.budget = flags.get_int("budget", 0);
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  options.threads = static_cast<int>(flags.get_int("threads", 4));
  options.search.population = static_cast<int>(flags.get_int("population", 16));
  options.search.batch = static_cast<int>(flags.get_int("batch", 8));
  options.sweep_cache_cap = flags.get_int("cache-cap", 0);
  options.timeout_ms = flags.get_double("timeout", 0.0);
  if (flags.has("shard")) {
    const std::string shard = flags.get_string("shard");
    const auto slash = shard.find('/');
    try {
      if (slash == std::string::npos || slash == 0 || slash + 1 == shard.size())
        throw ConfigError("");
      options.search.shard_index = std::stoi(shard.substr(0, slash));
      options.search.shard_count = std::stoi(shard.substr(slash + 1));
    } catch (const std::exception&) {
      throw ConfigError("--shard expects INDEX/COUNT (e.g. 0/4), got '" + shard + "'");
    }
  }

  s.optimizer = std::make_unique<opt::Optimizer>(std::move(space), std::move(objective),
                                                 std::move(constraints), options);
  return s;
}

/// One frontier row's axis values, rendered for a table or JSON document.
std::vector<std::string> axis_cells(const opt::SearchSpace& sp, const opt::CandidateEval& e) {
  std::vector<std::string> cells;
  for (std::size_t a = 0; a < sp.axes().size(); ++a) {
    const auto& axis = sp.axes()[a];
    std::int64_t v = axis.values[static_cast<std::size_t>(e.candidate.index[a])];
    cells.push_back(axis.field == opt::AxisField::kKind
                        ? core::kind_to_name(static_cast<core::DesignKind>(v))
                        : std::to_string(v));
  }
  return cells;
}

/// The machine-readable frontier array — one emitter shared by `optimize`
/// and `merge-checkpoints`, so the shard-equality tests can compare the two
/// documents' frontiers byte for byte.
void emit_frontier(report::JsonWriter& w, const opt::SearchSpace& sp,
                   const std::vector<opt::CandidateEval>& frontier) {
  w.array("frontier");
  for (const auto& e : frontier) {
    w.item_object();
    w.field("ordinal", e.ordinal);
    w.field("fingerprint", e.fingerprint);
    const auto cells = axis_cells(sp, e);
    for (std::size_t a = 0; a < sp.axes().size(); ++a)
      w.field(opt::axis_field_name(sp.axes()[a].field), cells[a]);
    w.array("objectives");
    for (double v : e.objectives) w.item_number(v);
    w.close_array();
    w.field("latency_ns", e.cost.latency_ns);
    w.field("energy_pj", e.cost.energy_pj);
    w.field("area_um2", e.cost.area_um2);
    w.field("cycles", e.cost.cycles);
    w.field("max_sc_units", e.cost.max_sc_units);
    w.close(false);
  }
  w.close_array();
}

int cmd_optimize(const Flags& flags) {
  OptimizeSetup setup = optimize_setup_from(flags);
  opt::Optimizer& optimizer = *setup.optimizer;
  const opt::OptimizerOptions& options = setup.options;

  // --store FILE: persistent evaluation cache shared across runs and shards.
  std::shared_ptr<store::ResultStore> result_store;
  if (flags.has("store")) {
    result_store = std::make_shared<store::ResultStore>(flags.get_string("store"));
    if (!result_store->report().clean())
      log_warn("store: quarantined " +
               std::to_string(result_store->report().records_quarantined) +
               " record(s), skipped " + std::to_string(result_store->report().bytes_skipped) +
               " byte(s) of " + result_store->path());
    optimizer.attach_store(result_store);
  }

  // SIGINT/SIGTERM checkpoint-and-exit instead of dying mid-search.
  store::install_interrupt_handlers();

  // --checkpoint FILE: resume when the file exists, and keep it refreshed.
  const std::string checkpoint = flags.get_string("checkpoint", "");
  opt::OptimizerResult result = [&] {
    if (checkpoint.empty()) return optimizer.run();
    optimizer.set_checkpoint_file(checkpoint, flags.get_int("checkpoint-every", 64));
    const auto text = store::read_file_if_exists(checkpoint);
    if (!text) return optimizer.run();
    log_info("resuming from checkpoint " + checkpoint);
    return optimizer.resume(*text);
  }();

  const auto& sp = optimizer.space();
  auto axis_values = [&](const opt::CandidateEval& e) { return axis_cells(sp, e); };

  // The JSON document is the machine-readable twin of the table: printed
  // under --json, and written to --out in either mode (cmd_plan convention).
  auto result_json = [&] {
    report::JsonWriter w(0);
    w.open();
    w.field("type", "red_opt_result");
    w.field("workload", setup.title);
    w.field("strategy", options.strategy);
    w.field("objective", optimizer.objective().to_string());
    w.field("seed", options.seed);
    w.field("fingerprint", optimizer.fingerprint());
    w.field("space_size", sp.size());
    w.field("complete", result.complete);
    w.field("interrupted", result.interrupted);
    emit_frontier(w, sp, result.frontier);
    w.object("stats");
    w.field("batches", result.stats.batches);
    w.field("proposals", result.stats.proposals);
    w.field("evaluations", result.stats.evaluations);
    w.field("repeats", result.stats.repeats);
    w.field("pruned", result.stats.pruned);
    w.field("sweep_points", optimizer.sweep_stats().points);
    w.field("sweep_evaluated", optimizer.sweep_stats().evaluated);
    w.field("sweep_cache_hits", optimizer.sweep_stats().cache_hits);
    w.field("sweep_cached_entries", optimizer.sweep_stats().cached_entries);
    w.field("sweep_evictions", optimizer.sweep_stats().evictions);
    w.field("store_hits", optimizer.sweep_stats().store_hits);
    w.field("store_rejects", optimizer.sweep_stats().store_rejects);
    w.close(false);
    if (result_store != nullptr) {
      const auto rep = result_store->report();
      w.object("store");
      w.field("path", result_store->path());
      w.field("entries", result_store->entries());
      w.field("records_loaded", rep.records_loaded);
      w.field("records_quarantined", rep.records_quarantined);
      w.field("bytes_skipped", rep.bytes_skipped);
      w.field("appended", rep.appended);
      w.close(false);
    }
    w.close();
    return w.str();
  };

  const bool json_mode = flags.get_bool("json");
  if (json_mode) {
    std::cout << result_json();
  } else {
    std::cout << "optimize " << setup.title << " (" << setup.stack.size()
              << (setup.stack.size() == 1 ? " layer" : " layers") << "): strategy "
              << options.strategy << ", objective " << optimizer.objective().to_string()
              << ", space " << sp.size() << " points, seed " << options.seed << '\n';
    std::vector<std::string> header;
    for (const auto& axis : sp.axes()) header.push_back(opt::axis_field_name(axis.field));
    for (const auto& term : optimizer.objective().terms())
      header.push_back(opt::metric_name(term.metric));
    header.push_back("latency (us)");
    header.push_back("energy (uJ)");
    header.push_back("area (mm^2)");
    header.push_back("max SC");
    TextTable t(header);
    for (const auto& e : result.frontier) {
      auto row = axis_values(e);
      for (double v : e.objectives) row.push_back(format_double(v, 4));
      row.push_back(format_double(e.cost.latency_ns / 1e3, 2));
      row.push_back(format_double(e.cost.energy_pj / 1e6, 3));
      row.push_back(format_double(e.cost.area_um2 / 1e6, 4));
      row.push_back(std::to_string(e.cost.max_sc_units));
      t.add_row(row);
    }
    std::cout << t.to_ascii();
    std::cout << "frontier: " << result.frontier.size() << " of "
              << result.state.evaluated.size() << " evaluated (" << result.stats.evaluations
              << " this run, " << result.stats.pruned << " pruned, " << result.stats.repeats
              << " repeat proposals, " << optimizer.sweep_stats().cache_hits
              << " sweep-cache hits, " << optimizer.sweep_stats().store_hits
              << " store hits), "
              << (result.interrupted ? "interrupted (checkpoint written)"
                  : result.complete  ? "space explored"
                                     : "budget reached")
              << '\n';
    if (!checkpoint.empty()) std::cout << "checkpoint: " << checkpoint << '\n';
    if (result_store != nullptr)
      std::cout << "store: " << result_store->path() << " (" << result_store->entries()
                << " entries, " << result_store->report().appended << " appended)\n";
  }
  if (flags.has("out")) write_out_file(flags, result_json(), json_mode);
  // A distinct exit code lets wrappers tell "finished" from "stopped early,
  // rerun me with the same --checkpoint to continue".
  return result.interrupted ? 7 : 0;
}

int cmd_merge_checkpoints(const Flags& flags) {
  const auto paths = std::vector<std::string>(flags.positional().begin() + 1,
                                              flags.positional().end());
  if (paths.empty())
    throw ConfigError("merge-checkpoints needs at least one checkpoint file argument");

  // Rebuild the search identity the shards ran with (same flags as
  // `optimize`); a shard whose fingerprint disagrees is quarantined below.
  OptimizeSetup setup = optimize_setup_from(flags);
  opt::Optimizer& optimizer = *setup.optimizer;

  // A missing or unreadable file is quarantined exactly like a corrupt one:
  // the merge reports it and fuses the shards it can prove intact.
  std::vector<std::pair<std::string, std::string>> documents;
  for (const auto& path : paths) {
    try {
      documents.emplace_back(path, store::read_file(path));
    } catch (const IoError& e) {
      documents.emplace_back(path, "");  // load_state rejects it with a parse error
      log_warn("merge: cannot read " + path + ": " + e.what());
    }
  }
  const opt::MergeResult merged = optimizer.merge_states(documents);
  const auto frontier = optimizer.frontier_of(merged.state);
  const auto& sp = optimizer.space();

  auto result_json = [&] {
    report::JsonWriter w(0);
    w.open();
    w.field("type", "red_opt_merge");
    w.field("workload", setup.title);
    w.field("fingerprint", optimizer.fingerprint());
    w.field("space_size", sp.size());
    w.field("shards_merged", merged.shards_merged);
    w.field("duplicate_evals", merged.duplicate_evals);
    w.field("evaluations", static_cast<std::int64_t>(merged.state.evaluated.size()));
    w.field("pruned", static_cast<std::int64_t>(merged.state.pruned.size()));
    emit_frontier(w, sp, frontier);
    w.array("quarantined");
    for (const auto& q : merged.quarantined) {
      w.item_object();
      w.field("name", q.name);
      w.field("reason", q.reason);
      w.close(false);
    }
    w.close_array();
    w.close();
    return w.str();
  };

  const bool json_mode = flags.get_bool("json");
  if (json_mode) {
    std::cout << result_json();
  } else {
    std::cout << "merged " << merged.shards_merged << " of " << paths.size()
              << " checkpoint(s): " << merged.state.evaluated.size() << " evaluations ("
              << merged.duplicate_evals << " duplicates dropped), "
              << merged.state.pruned.size() << " pruned, frontier " << frontier.size()
              << " point(s)\n";
    for (const auto& q : merged.quarantined)
      std::cout << "  quarantined " << q.name << ": " << q.reason << '\n';
  }
  if (flags.has("out")) {
    // The merged artifact is itself a checkpoint: resume it unsharded to
    // fill any gaps quarantined shards left.
    write_out_file(flags, optimizer.checkpoint_json(merged.state), json_mode);
  }
  return 0;
}

int cmd_plan(const Flags& flags) {
  const auto kind = kind_from(flags);
  const auto cfg = config_from(flags);

  // Stack from --net, or a single layer from --layer / geometry flags.
  std::vector<nn::DeconvLayerSpec> stack;
  std::string title;
  if (flags.has("net")) {
    const std::string net = flags.get_string("net");
    const int div = static_cast<int>(flags.get_int("div", 1));
    stack = workloads::named_stack(net, div);
    title = net;
  } else {
    stack = {layer_from(flags)};
    title = stack.front().name;
  }
  const auto splan = plan::plan_stack(kind, stack, cfg);
  const auto json = report::to_json(splan);

  if (flags.get_bool("json")) {
    std::cout << json;
  } else {
    std::cout << "compiled plan: " << title << " on "
              << splan.layers.front().activity.design_name << " (" << splan.layers.size()
              << (splan.layers.size() == 1 ? " layer)\n" : " layers)\n");
    TextTable t({"layer", "fold", "groups", "sub-arrays", "macro", "tiles", "cycles",
                 "fingerprint"});
    for (const auto& lp : splan.layers) {
      const auto& a = lp.activity;
      std::int64_t tile_count = 0;
      for (std::size_t mi = 0; mi < lp.tiles.size(); ++mi)
        tile_count += a.macros[mi].count * lp.tiles[mi].tiles();
      const std::string macro = std::to_string(lp.layout.block_rows) + "x" +
                                std::to_string(lp.layout.block_cols) +
                                (lp.layout.blocks > 1
                                     ? " x" + std::to_string(lp.layout.blocks) + " SC"
                                     : "");
      t.add_row({lp.spec.name, std::to_string(lp.fold), std::to_string(a.groups),
                 std::to_string(a.sc_units), macro, std::to_string(tile_count),
                 std::to_string(a.cycles), lp.fingerprint()});
    }
    std::cout << t.to_ascii();
    std::cout << "stack fingerprint: " << splan.fingerprint() << '\n';
  }

  // Optional chip placement of the compiled plan (suppressed under --json:
  // stdout must stay one parseable document).
  if (flags.get_bool("chip") && !flags.get_bool("json")) {
    arch::ChipConfig chip;
    chip.banks = static_cast<int>(flags.get_int("banks", chip.banks));
    chip.subarrays_per_bank = flags.get_int("bank-subarrays", chip.subarrays_per_bank);
    const auto side = flags.get_int("subarray", 128);
    chip.subarray = {side, side};
    const auto cp = arch::plan_chip(splan, chip);
    std::cout << "chip placement (" << chip.banks << " banks x " << chip.subarrays_per_bank
              << " subarrays):\n";
    TextTable t({"layer", "sub-arrays", "bank", "slots"});
    for (const auto& l : cp.layers)
      t.add_row({l.layer, std::to_string(l.subarrays),
                 l.placed() ? std::to_string(l.bank) : "-",
                 l.placed() ? std::to_string(l.subarray_begin) + ".." +
                                  std::to_string(l.subarray_end - 1)
                            : "unplaced"});
    std::cout << t.to_ascii();
    std::cout << (cp.fits ? "fits" : "DOES NOT FIT") << ": " << cp.required_subarrays << "/"
              << cp.available_subarrays << " subarrays, " << cp.banks_used << " banks used, "
              << format_percent(cp.cell_utilization(), 1) << " cell utilization\n";
    for (const auto& d : cp.diagnostics) std::cout << "  ! " << d << '\n';
  }

  // Round-trip proof: the exported JSON parses back to an equal fingerprint.
  const auto back = report::stack_plan_from_json(json);
  if (back.fingerprint() != splan.fingerprint())
    throw MismatchError("plan JSON round-trip changed the fingerprint");
  if (!flags.get_bool("json"))
    std::cout << "JSON round-trip: ok (fingerprint " << back.fingerprint() << ")\n";

  if (flags.has("out")) write_out_file(flags, json, flags.get_bool("json"));
  return 0;
}

int cmd_verify(const Flags& flags) {
  const auto spec = layer_from(flags);
  const auto cfg = config_from(flags);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto report = sim::verify_layer(spec, seed, cfg);
  std::cout << report.summary() << '\n';
  for (const auto& v : report.verdicts)
    for (const auto& issue : v.issues) std::cout << "  " << v.design << ": " << issue << '\n';
  return report.all_passed() ? 0 : 3;
}

int cmd_trace(const Flags& flags) {
  const auto spec = layer_from(flags);
  const auto cfg = config_from(flags);
  const core::RedDesign red(cfg);
  const core::ZeroSkipSchedule schedule(spec, red.fold_for(spec), cfg.lookahead_h,
                                        cfg.lookaside_d);
  sim::TraceOptions opts;
  opts.max_cycles = flags.get_int("cycles", 16);
  std::cout << spec.to_string() << "\nZero-skipping schedule (fold " << schedule.fold()
            << ", window " << schedule.window() << ", " << schedule.num_cycles()
            << " cycles):\n"
            << sim::render_schedule_trace(schedule, opts);
  return 0;
}

int cmd_export(const Flags& flags) {
  const std::string dir = flags.get_string("out", "results");
  const std::string fmt_name = flags.get_string("format", "csv");
  report::ExportFormat fmt = report::ExportFormat::kCsv;
  if (fmt_name == "md") fmt = report::ExportFormat::kMarkdown;
  else if (fmt_name == "txt") fmt = report::ExportFormat::kAscii;
  else if (fmt_name != "csv") throw ConfigError("unknown --format (csv | md | txt)");
  const auto written = report::export_all_figures(dir, fmt);
  for (const auto& p : written) std::cout << "wrote " << p.string() << '\n';
  return 0;
}

int cmd_network(const Flags& flags) {
  const std::string net = flags.get_string("net", "dcgan");
  const auto stack = workloads::named_stack(net);
  const auto r = sim::evaluate_pipeline(kind_from(flags), stack, config_from(flags));
  std::cout << net << " on " << r.design_name << ":\n";
  for (const auto& s : r.stages)
    std::cout << "  " << s.spec.name << ": " << s.cost.cycles() << " cycles, "
              << format_double(s.cost.total_latency().value() / 1e3, 2) << " us\n";
  std::cout << "sequential " << format_double(r.sequential_latency.value() / 1e3, 2)
            << " us, interval " << format_double(r.initiation_interval.value() / 1e3, 2)
            << " us, " << format_double(r.throughput_img_per_s(), 0) << " img/s, "
            << format_double(r.energy_per_image.value() / 1e6, 3) << " uJ/img\n";
  return 0;
}

int cmd_throughput(const Flags& flags) {
  const std::string net = flags.get_string("net", "dcgan");
  const int div = static_cast<int>(flags.get_int("div", 16));
  const auto stack = workloads::named_stack(net, div);
  const auto kind = kind_from(flags);
  const auto cfg = config_from(flags);
  const int images_n = static_cast<int>(flags.get_int("images", 8));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  if (images_n < 1) throw ConfigError("--images must be >= 1");

  const sim::StreamingExecutor executor(kind, cfg, stack,
                                        workloads::make_stack_kernels(stack, seed));
  const auto images = workloads::make_input_batch(stack[0], images_n, seed);
  sim::StreamingOptions opts;
  opts.threads = static_cast<int>(flags.get_int("threads", 4));
  if (opts.threads < 1) throw ConfigError("--threads must be >= 1");
  opts.check = !flags.get_bool("no-check");
  const auto result = executor.stream(images, opts);

  const auto model = sim::evaluate_pipeline(kind, stack, cfg);
  std::cout << net << " (div " << div << ") on " << result.design_name << ": "
            << images_n << " images through " << result.depth << " stages, "
            << opts.threads << " stage lanes"
            << (result.programmed_fast_path ? ", programmed once"
                                            : ", reprogram-per-image fallback")
            << (opts.check ? ", activity-checked" : "") << '\n';
  const double img_per_s = result.wall_ms > 0.0 ? 1e3 * images_n / result.wall_ms : 0.0;
  std::cout << "measured: batch " << format_double(result.wall_ms, 2) << " ms, fill "
            << format_double(result.fill_ms(), 2) << " ms, steady interval "
            << format_double(result.steady_interval_ms(), 3) << " ms/img, "
            << format_double(img_per_s, 0) << " img/s\n";
  std::cout << "model: fill " << format_double(model.fill_latency.value() / 1e3, 2)
            << " us, interval " << format_double(model.initiation_interval.value() / 1e3, 2)
            << " us, " << format_double(model.throughput_img_per_s(), 0) << " img/s\n";
  std::cout << "activity: " << result.total.cycles << " cycles, "
            << result.total.mvm.conversions << " conversions, " << result.total.overlap_adds
            << " overlap adds across the batch\n";
  return 0;
}

int cmd_faults(const Flags& flags) {
  const auto spec = layer_from(flags);
  const auto cfg = config_from(flags);
  const auto kind = kind_from(flags);

  // The swept axis: per-cell stuck rate, split evenly into SA0/SA1 unless
  // --sa0/--sa1 skew the base model; wordline/bitline/drift ride along fixed.
  const auto rates = parse_double_list(flags.get_string("rates", "0,0.001,0.01"), "rates");
  std::vector<fault::FaultModel> models;
  models.reserve(rates.size());
  for (double r : rates) {
    if (r < 0.0 || r > 1.0)
      throw ConfigError("--rates entries must be in [0, 1], got " + format_double(r, 6));
    fault::FaultModel m = cfg.fault.model;
    m.sa0_rate += r / 2.0;
    m.sa1_rate += r / 2.0;
    models.push_back(m);
  }

  fault::FaultCampaignOptions opts;
  opts.trials = static_cast<int>(flags.get_int("trials", 3));
  opts.base_seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  opts.threads = static_cast<int>(flags.get_int("threads", 4));
  if (opts.trials < 1) throw ConfigError("--trials must be >= 1");
  if (opts.threads < 1) throw ConfigError("--threads must be >= 1");

  Rng rng(1);
  const auto input = workloads::make_input(spec, rng, 1, 7);
  const auto kernel = workloads::make_kernel(spec, rng, -7, 7);
  const auto points = fault::run_fault_campaign(kind, cfg, models, cfg.fault.repair, spec,
                                                input, kernel, opts);

  auto result_json = [&] {
    report::JsonWriter w(0);
    w.open();
    w.field("type", "red_fault_campaign");
    w.field("layer", spec.name);
    w.field("design", core::kind_to_name(kind));
    w.field("trials", std::int64_t{opts.trials});
    w.field("base_seed", std::uint64_t{opts.base_seed});
    w.object("repair");
    w.field("spare_rows", std::int64_t{cfg.fault.repair.spare_rows});
    w.field("spare_cols", std::int64_t{cfg.fault.repair.spare_cols});
    w.field("remap_rows", cfg.fault.repair.remap_rows);
    w.field("verify_retries", std::int64_t{cfg.fault.repair.verify_retries});
    w.close(false);
    w.array("degradation");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& p = points[i];
      w.item_object();
      w.field("stuck_rate", rates[i]);
      w.field("wordline_rate", p.model.wordline_rate);
      w.field("bitline_rate", p.model.bitline_rate);
      w.field("drift_sigma", p.model.drift_sigma);
      w.field("unrepaired_mse", p.mean_mse(false));
      w.field("unrepaired_snr_db", p.mean_snr_db(false));
      w.field("unrepaired_bit_errors", p.mean_bit_errors(false));
      w.field("repaired_mse", p.mean_mse(true));
      w.field("repaired_snr_db", p.mean_snr_db(true));
      w.field("repaired_bit_errors", p.mean_bit_errors(true));
      w.field("repaired_not_worse", p.repaired_not_worse());
      w.close(false);
    }
    w.close_array();
    w.close();
    return w.str();
  };

  if (flags.get_bool("json")) {
    std::cout << result_json();
  } else {
    std::cout << spec.to_string() << '\n'
              << "fault campaign on " << core::kind_to_name(kind) << ": " << rates.size()
              << " rates x " << opts.trials << " trials, repair {spares "
              << cfg.fault.repair.spare_rows << "/" << cfg.fault.repair.spare_cols
              << (cfg.fault.repair.remap_rows ? ", remap" : "") << ", retries "
              << cfg.fault.repair.verify_retries << "}\n";
    TextTable t({"stuck rate", "bare MSE", "bare SNR (dB)", "repaired MSE",
                 "repaired SNR (dB)", "bit errs/img", "gain"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& p = points[i];
      t.add_row({format_double(rates[i], 4), format_double(p.mean_mse(false), 3),
                 format_double(p.mean_snr_db(false), 1), format_double(p.mean_mse(true), 3),
                 format_double(p.mean_snr_db(true), 1),
                 format_double(p.mean_bit_errors(true), 1),
                 p.repaired_not_worse() ? "+" : "WORSE"});
    }
    std::cout << t.to_ascii();
  }
  if (flags.has("out")) write_out_file(flags, result_json(), flags.get_bool("json"));
  return 0;
}

/// Install a telemetry sink for the lifetime of one command dispatch and
/// uninstall it on every exit path (including exceptions), so the global
/// sink pointer can never dangle past the registry it points at.
struct ScopedTelemetry {
  ScopedTelemetry(telemetry::MetricsRegistry* m, telemetry::Tracer* t) {
    telemetry::install_metrics(m);
    telemetry::install_tracer(t);
  }
  ~ScopedTelemetry() {
    telemetry::install_metrics(nullptr);
    telemetry::install_tracer(nullptr);
  }
};

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags = Flags::parse(argc - 1, argv + 1);
    if (flags.positional().empty()) {
      usage();
      return 1;
    }
    // RED_LOG_LEVEL / --log-timestamps first: warnings from the command
    // itself must already honour the requested verbosity and format.
    red::apply_log_env();
    if (flags.get_bool("log-timestamps")) red::set_log_timestamps(true);

    // --metrics / --trace: build the sinks up front so every subcommand is
    // observable through the same two flags. Telemetry is observe-only — the
    // command's results are byte-identical with or without the sinks.
    const std::string metrics_path = flags.get_string("metrics", "");
    const std::string trace_path = flags.get_string("trace", "");
    std::unique_ptr<red::telemetry::MetricsRegistry> metrics_registry;
    std::unique_ptr<red::telemetry::Tracer> trace_tracer;
    if (!metrics_path.empty())
      metrics_registry = std::make_unique<red::telemetry::MetricsRegistry>();
    if (!trace_path.empty()) trace_tracer = std::make_unique<red::telemetry::Tracer>();
    const ScopedTelemetry telemetry_scope(metrics_registry.get(), trace_tracer.get());

    const std::string& cmd = flags.positional().front();
    int rc = 0;
    if (cmd == "layer")
      rc = cmd_layer(flags);
    else if (cmd == "compare")
      rc = cmd_compare(flags);
    else if (cmd == "conv")
      rc = cmd_conv(flags);
    else if (cmd == "network")
      rc = cmd_network(flags);
    else if (cmd == "plan")
      rc = cmd_plan(flags);
    else if (cmd == "throughput")
      rc = cmd_throughput(flags);
    else if (cmd == "sweep")
      rc = cmd_sweep(flags);
    else if (cmd == "faults")
      rc = cmd_faults(flags);
    else if (cmd == "optimize")
      rc = cmd_optimize(flags);
    else if (cmd == "merge-checkpoints")
      rc = cmd_merge_checkpoints(flags);
    else if (cmd == "verify")
      rc = cmd_verify(flags);
    else if (cmd == "trace")
      rc = cmd_trace(flags);
    else if (cmd == "export")
      rc = cmd_export(flags);
    else if (cmd == "table1")
      std::cout << red::report::table1(red::workloads::table1_benchmarks()).to_ascii();
    else if (cmd == "fig4")
      std::cout << red::report::fig4_redundancy({1, 2, 4, 8, 16, 32}).to_ascii();
    else {
      usage();
      return 1;
    }
    // Export telemetry after the command finishes: the trace covers the whole
    // dispatch, and a failed run (rc != 0) still leaves its artifacts behind
    // for diagnosis. Table to stdout only in text mode — under --json stdout
    // must stay one parseable document.
    const bool json_mode = flags.get_bool("json");
    if (trace_tracer != nullptr) {
      trace_tracer->write_chrome_trace(trace_path);
      (json_mode ? std::cerr : std::cout) << "wrote " << trace_path << '\n';
    }
    if (metrics_registry != nullptr) {
      if (!json_mode) std::cout << metrics_registry->snapshot_table();
      red::store::write_file_atomic(metrics_path, metrics_registry->snapshot_json());
      (json_mode ? std::cerr : std::cout) << "wrote " << metrics_path << '\n';
    }
    for (const auto& name : flags.unused()) red::log_warn("unused flag --" + name);
    return rc;
  } catch (const red::ConfigError& e) {
    // Bad flag / bad value: the message already names the flag and the
    // accepted values, so one line is enough to fix the invocation.
    std::cerr << "red_cli: config error: " << e.what() << '\n';
    return 4;
  } catch (const red::MismatchError& e) {
    // An artifact contradicts itself (tampered checkpoint, plan fingerprint
    // drift): rerunning will not help, the input file needs attention.
    std::cerr << "red_cli: mismatch: " << e.what() << '\n';
    return 5;
  } catch (const red::IoError& e) {
    // The filesystem, not the configuration: missing directory, permissions,
    // full disk. Distinct from 4 so wrappers can retry or re-point --out
    // without re-validating their flags.
    std::cerr << "red_cli: io error: " << e.what() << '\n';
    return 6;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
