#!/usr/bin/env sh
# Run the simulator benchmarks and emit the machine-readable reports:
#   BENCH_mvm.json      — Google Benchmark JSON with the before/after MVM
#                         kernel pairs (needs google-benchmark at build time)
#   BENCH_analog.json   — before/after IR-drop solver and noise-sweep timings
#   BENCH_pipeline.json — sequential per-image runs vs the streaming batched
#                         executor (fill, steady-state interval, img/s)
#   BENCH_opt.json      — design-space optimizer strategies vs the exhaustive
#                         frontier (evaluations-to-frontier, memo hit rates)
#   BENCH_fault.json    — fault-injection campaigns: graceful-degradation
#                         curves (bare vs repaired) gated on zero-rate oracle
#                         equivalence and repaired-never-worse quality
# See docs/PERFORMANCE.md for how to read them.
#
# Usage: tools/run_bench.sh [--quick] [--mvm-only] [--out-dir DIR] [build_dir]
#   --quick       one-iteration smoke run (what the bench_smoke CTest label uses)
#   --mvm-only    skip the analog/pipeline/opt benchmarks (bench_smoke_micro
#                 uses this so their smoke coverage stays with their own
#                 bench_smoke_* entries)
#   --out-dir DIR directory receiving every BENCH_*.json (default: .)
set -eu

quick=0
mvm_only=0
out_dir="."
while true; do
  case "${1:-}" in
    --quick) quick=1; shift ;;
    --mvm-only) mvm_only=1; shift ;;
    --out-dir) out_dir="${2:?--out-dir needs a directory}"; shift 2 ;;
    *) break ;;
  esac
done
build_dir="${1:-build}"
mkdir -p "${out_dir}"

if [ -x "${build_dir}/bench_micro_simulator" ]; then
  min_time_flag=""
  if [ "${quick}" = "1" ]; then
    min_time_flag="--benchmark_min_time=0.001"
  fi
  "${build_dir}/bench_micro_simulator" \
    --benchmark_filter='BM_Mvm|BM_SimulateNetwork' \
    ${min_time_flag} \
    --benchmark_out="${out_dir}/BENCH_mvm.json" \
    --benchmark_out_format=json
  echo ""
  echo "Wrote ${out_dir}/BENCH_mvm.json"
  echo "Before/after pairs: BM_MvmBitAccurateReference vs BM_MvmBitAccurate,"
  echo "BM_MvmClippedReference vs BM_MvmClipped, BM_SimulateNetwork/1 vs /4,"
  echo "and BM_MvmPackedIsa/scalar vs /portable /popcnt /avx2 /avx512 (one"
  echo "row per packed-kernel dispatch tier; the run refuses to start unless"
  echo "every tier is bit-identical to the reference oracle)."
else
  echo "warning: ${build_dir}/bench_micro_simulator not found (google-benchmark" >&2
  echo "missing at configure time?); skipping ${out_dir}/BENCH_mvm.json." >&2
fi

if [ "${mvm_only}" = "1" ]; then
  exit 0
fi

quick_flag=""
if [ "${quick}" = "1" ]; then
  quick_flag="--quick"
fi

for bench in bench_analog bench_pipeline bench_opt bench_fault; do
  if [ ! -x "${build_dir}/${bench}" ]; then
    echo "error: ${build_dir}/${bench} not found." >&2
    echo "Build it first: cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
    exit 1
  fi
done

echo ""
"${build_dir}/bench_analog" ${quick_flag} --out "${out_dir}/BENCH_analog.json"
echo "Before/after pairs: BM_IrDropReferenceSor vs BM_IrDropAdiFast,"
echo "BM_NoiseSweepPerSeedRebuild vs BM_NoiseSweepMonteCarlo."

echo ""
"${build_dir}/bench_pipeline" ${quick_flag} --out "${out_dir}/BENCH_pipeline.json"
echo "Before/after pair: BM_SequentialPerImage vs BM_StreamingPipelined."

echo ""
"${build_dir}/bench_opt" ${quick_flag} --out "${out_dir}/BENCH_opt.json"
echo "Pairs: BM_Opt_<strategy> cold vs _warm (memoized re-search); see the"
echo "search[] section for evaluations-to-frontier and memo hit rates."

echo ""
"${build_dir}/bench_fault" ${quick_flag} --out "${out_dir}/BENCH_fault.json"
echo "See the degradation[] section for bare-vs-repaired SNR per fault rate;"
echo "the gates object must read all-true (zero-rate oracle equivalence,"
echo "repaired never worse)."
