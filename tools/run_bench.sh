#!/usr/bin/env sh
# Run the simulator benchmarks and emit the machine-readable reports:
#   BENCH_mvm.json      — Google Benchmark JSON with the before/after MVM
#                         kernel pairs (needs google-benchmark at build time)
#   BENCH_analog.json   — before/after IR-drop solver and noise-sweep timings
#   BENCH_pipeline.json — sequential per-image runs vs the streaming batched
#                         executor (fill, steady-state interval, img/s)
# See docs/PERFORMANCE.md for how to read them.
#
# Usage: tools/run_bench.sh [--quick] [--mvm-only] [build_dir] [mvm_out.json]
#                           [analog_out.json] [pipeline_out.json]
#   --quick     one-iteration smoke run (what the bench_smoke CTest label uses)
#   --mvm-only  skip the analog benchmark (bench_smoke_micro uses this so the
#               analog smoke coverage stays with bench_smoke_analog alone)
set -eu

quick=0
mvm_only=0
while true; do
  case "${1:-}" in
    --quick) quick=1; shift ;;
    --mvm-only) mvm_only=1; shift ;;
    *) break ;;
  esac
done
build_dir="${1:-build}"
mvm_out="${2:-BENCH_mvm.json}"
analog_out="${3:-BENCH_analog.json}"
pipeline_out="${4:-BENCH_pipeline.json}"

if [ -x "${build_dir}/bench_micro_simulator" ]; then
  min_time_flag=""
  if [ "${quick}" = "1" ]; then
    min_time_flag="--benchmark_min_time=0.001"
  fi
  "${build_dir}/bench_micro_simulator" \
    --benchmark_filter='BM_Mvm|BM_SimulateNetwork' \
    ${min_time_flag} \
    --benchmark_out="${mvm_out}" \
    --benchmark_out_format=json
  echo ""
  echo "Wrote ${mvm_out}"
  echo "Before/after pairs: BM_MvmBitAccurateReference vs BM_MvmBitAccurate,"
  echo "BM_MvmClippedReference vs BM_MvmClipped, BM_SimulateNetwork/1 vs /4."
else
  echo "warning: ${build_dir}/bench_micro_simulator not found (google-benchmark" >&2
  echo "missing at configure time?); skipping ${mvm_out}." >&2
fi

if [ "${mvm_only}" = "1" ]; then
  exit 0
fi

if [ ! -x "${build_dir}/bench_analog" ]; then
  echo "error: ${build_dir}/bench_analog not found." >&2
  echo "Build it first: cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
  exit 1
fi

echo ""
quick_flag=""
if [ "${quick}" = "1" ]; then
  quick_flag="--quick"
fi
"${build_dir}/bench_analog" ${quick_flag} --out "${analog_out}"
echo "Before/after pairs: BM_IrDropReferenceSor vs BM_IrDropAdiFast,"
echo "BM_NoiseSweepPerSeedRebuild vs BM_NoiseSweepMonteCarlo."

if [ ! -x "${build_dir}/bench_pipeline" ]; then
  echo "error: ${build_dir}/bench_pipeline not found." >&2
  echo "Build it first: cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
  exit 1
fi

echo ""
"${build_dir}/bench_pipeline" ${quick_flag} --out "${pipeline_out}"
echo "Before/after pair: BM_SequentialPerImage vs BM_StreamingPipelined."
