#!/usr/bin/env sh
# Run the simulator micro-benchmarks and emit BENCH_mvm.json (Google
# Benchmark JSON) with the before/after MVM kernel pairs. See
# docs/PERFORMANCE.md for how to read the report.
#
# Usage: tools/run_bench.sh [--quick] [build_dir] [output.json]
#   --quick    one-iteration smoke run (what the bench_smoke CTest label uses)
set -eu

quick=0
if [ "${1:-}" = "--quick" ]; then
  quick=1
  shift
fi
build_dir="${1:-build}"
out="${2:-BENCH_mvm.json}"

if [ ! -x "${build_dir}/bench_micro_simulator" ]; then
  echo "error: ${build_dir}/bench_micro_simulator not found." >&2
  echo "Build it first: cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
  exit 1
fi

min_time_flag=""
if [ "${quick}" = "1" ]; then
  min_time_flag="--benchmark_min_time=0.001"
fi

"${build_dir}/bench_micro_simulator" \
  --benchmark_filter='BM_Mvm|BM_SimulateNetwork' \
  ${min_time_flag} \
  --benchmark_out="${out}" \
  --benchmark_out_format=json

echo ""
echo "Wrote ${out}"
echo "Before/after pairs: BM_MvmBitAccurateReference vs BM_MvmBitAccurate,"
echo "BM_MvmClippedReference vs BM_MvmClipped, BM_SimulateNetwork/1 vs /4."
