// red_lint — repo-specific determinism/durability linter.
//
// The project's core contract is bit-identical results across thread counts,
// process restarts, and shard merges. Most violations of that contract are
// syntactically recognizable long before they surface as a 2am flaky
// bit-mismatch: a stray std::rand, iteration over an unordered container
// feeding output, a raw std::ofstream bypassing the atomic-write layer. This
// tool is a standalone, dependency-free token/line-level linter encoding
// those invariants as ~9 rules (see kRules below, or run with --list-rules).
//
// Mechanics:
//   * Analysis runs on a "masked" copy of each file where comments and
//     string/char literals are blanked, so rule patterns never fire inside
//     prose or test fixtures' literals.
//   * `// red-lint: allow(<rule>[, <rule>...])` on a line (or the line
//     directly above) suppresses findings of those rules there. Suppressions
//     are for sites where a human has checked the invariant holds anyway;
//     the comment should say why.
//   * A checked-in baseline (tools/lint_baseline.txt: `rule|path|count`
//     lines) ratchets legacy findings: counts may go down (run with
//     --write-baseline to record progress) but never up — any finding beyond
//     the baselined count fails the run.
//   * --fix rewrites the mechanical findings in place (double-tostring ->
//     red::report::json_number, time(nullptr)/std::random_device seeds -> a
//     fixed SplitMix64 constant) and re-reports what remains.
//
// Exit codes: 0 = clean (or fully baselined), 1 = new findings, 2 = usage or
// I/O error. Deliberately NOT linked against libred: the linter must build
// and run even when the library does not compile.
#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---- rule table -------------------------------------------------------------

struct RuleDoc {
  const char* name;
  const char* invariant;
};

constexpr RuleDoc kRules[] = {
    {"unseeded-rng",
     "all randomness flows through the counter RNGs (opt_rnd / fault_rnd / SplitMix64 "
     "seeds); std::rand, srand, std::random_device and time(nullptr) draw from process "
     "state, so two runs (or two threads) diverge"},
    {"unordered-iteration",
     "iterating a std::unordered_map/unordered_set observes hash-table order, which is "
     "implementation- and history-dependent; results, keys, and JSON built from such "
     "iteration are not bit-stable — sort first, or iterate a deterministic index"},
    {"raw-file-write",
     "every output file goes through store::write_file_atomic / write_report_file "
     "(temp sibling + fsync + rename); a raw std::ofstream/fopen write can be torn by "
     "a crash and breaks the SIGKILL-and-resume contract"},
    {"double-tostring",
     "std::to_string on floating-point truncates to 6 digits, so values do not survive "
     "a JSON round-trip bit-exactly; emitters must use report::json_number"},
    {"double-stream",
     "streaming a double into a report/bench emitter uses default precision and "
     "breaks round-trip exactness; use report::json_number (JSON) or the table "
     "formatters (text)"},
    {"naked-exit",
     "process exit codes are a documented CLI contract (see the table in red_cli.cpp); "
     "a naked exit()/abort() elsewhere invents an undocumented code and skips "
     "checkpoint/interrupt handling"},
    {"internal-include",
     "headers marked '// red-lint: internal-header' are subsystem-private; include the "
     "subsystem's public header instead (uplevel-relative includes are banned for the "
     "same reason)"},
    {"parallel-float-accum",
     "accumulating into a shared float/double inside a parallel_for/parallel_chunks "
     "body is order-dependent (and racy); accumulate per-lane and merge in a "
     "deterministic order after the join"},
    {"telemetry-purity",
     "telemetry is observe-only: no telemetry symbol may appear in the result and "
     "serialization layers (plan/ xbar/ tensor/ nn/ core/ store/ report/) or inside "
     "structural_key / checkpoint_json / encode_outcome / decode_outcome bodies — a "
     "wall-clock-adjacent value feeding a key, checkpoint, or result breaks "
     "bit-reproducibility"},
};

bool known_rule(const std::string& name) {
  for (const auto& r : kRules)
    if (name == r.name) return true;
  return false;
}

// ---- findings ---------------------------------------------------------------

struct Finding {
  std::string rule;
  std::string path;  // repo-relative, forward slashes
  int line = 0;      // 1-based
  std::string message;
  // --fix support: byte range within the original line to replace, and the
  // replacement text. Empty replacement_valid = not mechanically fixable.
  bool fixable = false;
  std::size_t col = 0, len = 0;
  std::string replacement;
};

// ---- file model -------------------------------------------------------------

struct SourceFile {
  std::string path;                 // repo-relative
  std::vector<std::string> lines;   // original text
  std::vector<std::string> masked;  // comments + string/char literals blanked
  // allow-sets: rule names suppressed on a given 0-based line (from an
  // allow() on that line or the line above).
  std::vector<std::set<std::string>> allowed;
  bool internal_header = false;
};

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

// Parse "red-lint: allow(a, b)" directives out of a comment's text.
void parse_directives(const std::string& comment, std::set<std::string>* rules,
                      bool* internal_header) {
  const std::size_t tag = comment.find("red-lint:");
  if (tag == std::string::npos) return;
  const std::string body = comment.substr(tag + 9);
  if (body.find("internal-header") != std::string::npos) *internal_header = true;
  std::size_t open = body.find("allow(");
  while (open != std::string::npos) {
    const std::size_t close = body.find(')', open);
    if (close == std::string::npos) break;
    std::stringstream list(body.substr(open + 6, close - open - 6));
    std::string rule;
    while (std::getline(list, rule, ',')) {
      rule.erase(0, rule.find_first_not_of(" \t"));
      rule.erase(rule.find_last_not_of(" \t") + 1);
      if (!rule.empty()) rules->insert(rule);
    }
    open = body.find("allow(", close);
  }
}

// Blank comments and string/char literals (preserving line structure) while
// collecting suppression directives. A suppression applies to its own line
// and the following line.
void mask_and_collect(SourceFile& f) {
  f.masked.assign(f.lines.size(), "");
  f.allowed.assign(f.lines.size() + 1, {});
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string comment_text, raw_delim;
  std::size_t comment_line = 0;
  bool file_header_zone = true;  // internal-header marker must sit near the top

  for (std::size_t li = 0; li < f.lines.size(); ++li) {
    const std::string& line = f.lines[li];
    std::string& out = f.masked[li];
    out.reserve(line.size());
    if (state == State::kLineComment) state = State::kCode;  // ends at newline
    if (state == State::kString || state == State::kChar) state = State::kCode;  // unterminated

    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            state = State::kLineComment;
            comment_text.assign(line, i, std::string::npos);
            comment_line = li;
            out.append(line.size() - i, ' ');
            i = line.size();
            break;
          }
          if (c == '/' && next == '*') {
            state = State::kBlockComment;
            comment_text.clear();
            comment_line = li;
            out += "  ";
            ++i;
            break;
          }
          if (c == 'R' && next == '"' &&
              (i == 0 || (!std::isalnum(static_cast<unsigned char>(line[i - 1])) &&
                          line[i - 1] != '_'))) {
            // raw string literal R"delim( ... )delim"
            std::size_t open = line.find('(', i + 2);
            if (open != std::string::npos) {
              raw_delim = ")" + line.substr(i + 2, open - i - 2) + "\"";
              state = State::kRawString;
              out.append(open - i + 1, ' ');
              i = open;
              break;
            }
            out += c;
            break;
          }
          if (c == '"') {
            state = State::kString;
            out += ' ';
            break;
          }
          if (c == '\'') {
            // char literal (digit separators like 1'000 have a digit before)
            if (i > 0 && (std::isdigit(static_cast<unsigned char>(line[i - 1])))) {
              out += ' ';
              break;
            }
            state = State::kChar;
            out += ' ';
            break;
          }
          out += c;
          break;
        case State::kLineComment:
          break;  // consumed above
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            std::set<std::string> rules;
            bool internal = false;
            parse_directives(comment_text, &rules, &internal);
            if (internal && file_header_zone) f.internal_header = true;
            for (const auto& r : rules) {
              f.allowed[comment_line].insert(r);
              if (comment_line + 1 < f.allowed.size()) f.allowed[comment_line + 1].insert(r);
            }
            out += "  ";
            ++i;
          } else {
            comment_text += c;
            out += ' ';
          }
          break;
        case State::kString:
          if (c == '\\') {
            out += "  ";
            ++i;
          } else if (c == '"') {
            state = State::kCode;
            out += ' ';
          } else {
            out += ' ';
          }
          break;
        case State::kChar:
          if (c == '\\') {
            out += "  ";
            ++i;
          } else if (c == '\'') {
            state = State::kCode;
            out += ' ';
          } else {
            out += ' ';
          }
          break;
        case State::kRawString: {
          const std::size_t end = line.find(raw_delim, i);
          if (end == std::string::npos) {
            out.append(line.size() - i, ' ');
            i = line.size();
          } else {
            out.append(end - i + raw_delim.size(), ' ');
            i = end + raw_delim.size() - 1;
            state = State::kCode;
          }
          break;
        }
      }
    }
    if (state == State::kLineComment) {
      std::set<std::string> rules;
      bool internal = false;
      parse_directives(comment_text, &rules, &internal);
      if (internal && file_header_zone) f.internal_header = true;
      f.allowed[comment_line].insert(rules.begin(), rules.end());
      if (comment_line + 1 < f.allowed.size())
        f.allowed[comment_line + 1].insert(rules.begin(), rules.end());
    }
    // The header zone ends at the first line with real code on it.
    if (file_header_zone && f.masked[li].find_first_not_of(" \t") != std::string::npos)
      file_header_zone = li < 2;  // tolerate a shebang/pragma-adjacent marker
  }
}

bool is_suppressed(const SourceFile& f, int line1, const std::string& rule) {
  const std::size_t li = static_cast<std::size_t>(line1 - 1);
  return li < f.allowed.size() && f.allowed[li].count(rule) > 0;
}

// ---- token helpers ----------------------------------------------------------

bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Find `word` at a word boundary in `s`, starting at pos.
std::size_t find_word(const std::string& s, const std::string& word, std::size_t pos = 0) {
  while (true) {
    const std::size_t at = s.find(word, pos);
    if (at == std::string::npos) return std::string::npos;
    const bool left_ok = at == 0 || !ident_char(s[at - 1]);
    const std::size_t end = at + word.size();
    const bool right_ok = end >= s.size() || !ident_char(s[end]);
    if (left_ok && right_ok) return at;
    pos = at + 1;
  }
}

std::size_t skip_space(const std::string& s, std::size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

std::string read_ident(const std::string& s, std::size_t i) {
  std::size_t j = i;
  while (j < s.size() && ident_char(s[j])) ++j;
  return s.substr(i, j - i);
}

// Whole-file masked text with newline joints, plus a map from global offset
// to (line, col).
struct FlatText {
  std::string text;
  std::vector<std::size_t> line_start;  // offset of each line

  explicit FlatText(const std::vector<std::string>& lines) {
    for (const auto& l : lines) {
      line_start.push_back(text.size());
      text += l;
      text += '\n';
    }
  }
  [[nodiscard]] int line_of(std::size_t off) const {
    const auto it = std::upper_bound(line_start.begin(), line_start.end(), off);
    return static_cast<int>(it - line_start.begin());  // 1-based
  }
  [[nodiscard]] std::size_t col_of(std::size_t off) const {
    return off - line_start[static_cast<std::size_t>(line_of(off) - 1)];
  }
};

// Balanced-paren extent: given offset of '(' in flat text, return offset one
// past the matching ')' (or npos).
std::size_t match_paren(const std::string& s, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    else if (s[i] == ')' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

// Balanced-brace extent: given offset of '{' in flat text, return offset one
// past the matching '}' (or npos). Sound on masked text, where braces inside
// strings and comments are already blanked.
std::size_t match_brace(const std::string& s, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == '{') ++depth;
    else if (s[i] == '}' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

// ---- per-file fact gathering ------------------------------------------------

// Names declared in this file with floating-point type. Token heuristic:
// `double x` / `float y` / `const double z` where the next token is an
// identifier (not '(' — that would be a function return type... which also
// binds the name; both are useful facts for the rules using this).
std::set<std::string> float_names(const FlatText& flat) {
  std::set<std::string> names;
  for (const char* type : {"double", "float"}) {
    std::size_t pos = 0;
    while ((pos = find_word(flat.text, type, pos)) != std::string::npos) {
      std::size_t i = skip_space(flat.text, pos + std::strlen(type));
      // skip cv/ref/pointer clutter between type and name
      while (i < flat.text.size() && (flat.text[i] == '&' || flat.text[i] == '*'))
        i = skip_space(flat.text, i + 1);
      const std::string name = read_ident(flat.text, i);
      if (!name.empty() && !std::isdigit(static_cast<unsigned char>(name[0]))) {
        const std::size_t after = skip_space(flat.text, i + name.size());
        // declaration if followed by = ; , ) { or [ — not '(' (function) or
        // '::' (qualified return type)
        if (after < flat.text.size() && std::string("=;,){[").find(flat.text[after]) !=
                                            std::string::npos)
          names.insert(name);
      }
      pos += std::strlen(type);
    }
  }
  return names;
}

// Names declared as std::unordered_map / std::unordered_set in this file.
std::set<std::string> unordered_names(const FlatText& flat) {
  std::set<std::string> names;
  for (const char* type : {"unordered_map", "unordered_set"}) {
    std::size_t pos = 0;
    while ((pos = find_word(flat.text, type, pos)) != std::string::npos) {
      std::size_t i = skip_space(flat.text, pos + std::strlen(type));
      if (i < flat.text.size() && flat.text[i] == '<') {
        int depth = 0;
        for (; i < flat.text.size(); ++i) {
          if (flat.text[i] == '<') ++depth;
          else if (flat.text[i] == '>' && --depth == 0) {
            ++i;
            break;
          }
        }
        i = skip_space(flat.text, i);
        while (i < flat.text.size() && (flat.text[i] == '&' || flat.text[i] == '*'))
          i = skip_space(flat.text, i + 1);
        const std::string name = read_ident(flat.text, i);
        if (!name.empty()) names.insert(name);
      }
      pos += std::strlen(type);
    }
  }
  return names;
}

// ---- rules ------------------------------------------------------------------

struct Context {
  const SourceFile& file;
  const FlatText& flat;
  const std::set<std::string>& floats;
  const std::set<std::string>& unordered;
  std::vector<Finding>& findings;

  void report(const std::string& rule, std::size_t off, const std::string& message,
              bool fixable = false, std::size_t len = 0, std::string replacement = "") {
    const int line = flat.line_of(off);
    if (is_suppressed(file, line, rule)) return;
    findings.push_back({rule, file.path, line, message, fixable, flat.col_of(off), len,
                        std::move(replacement)});
  }
};

bool path_is(const std::string& path, const char* suffix) {
  const std::string s(suffix);
  return path.size() >= s.size() && path.compare(path.size() - s.size(), s.size(), s) == 0;
}

bool path_under(const std::string& path, const char* prefix) {
  return path.rfind(prefix, 0) == 0;
}

void rule_unseeded_rng(Context& ctx) {
  const std::string& t = ctx.flat.text;
  for (const char* bad : {"srand", "random_device"}) {
    for (std::size_t pos = 0; (pos = find_word(t, bad, pos)) != std::string::npos; ++pos)
      ctx.report("unseeded-rng", pos, std::string("'") + bad + "' draws from process state");
  }
  // plain rand( — but not opt_rnd( / fault_rnd( etc. (word boundary covers)
  for (std::size_t pos = 0; (pos = find_word(t, "rand", pos)) != std::string::npos; ++pos) {
    const std::size_t after = skip_space(t, pos + 4);
    if (after < t.size() && t[after] == '(')
      ctx.report("unseeded-rng", pos, "'rand()' draws from process-global hidden state");
  }
  // time(nullptr) / time(NULL) / time(0) — the classic nondeterministic seed
  for (std::size_t pos = 0; (pos = find_word(t, "time", pos)) != std::string::npos; ++pos) {
    const std::size_t open = skip_space(t, pos + 4);
    if (open >= t.size() || t[open] != '(') continue;
    const std::size_t close = match_paren(t, open);
    if (close == std::string::npos) continue;
    std::string arg = t.substr(open + 1, close - open - 2);
    arg.erase(std::remove_if(arg.begin(), arg.end(),
                             [](unsigned char c) { return std::isspace(c); }),
              arg.end());
    if (arg == "nullptr" || arg == "NULL" || arg == "0")
      ctx.report("unseeded-rng", pos, "'time(" + arg + ")' seeds differ per run", true,
                 close - pos, "0x9e3779b97f4a7c15ULL");
  }
}

void rule_unordered_iteration(Context& ctx) {
  const std::string& t = ctx.flat.text;
  for (const auto& name : ctx.unordered) {
    // range-for:  for ( ... : name )
    for (std::size_t pos = 0; (pos = find_word(t, "for", pos)) != std::string::npos; ++pos) {
      const std::size_t open = skip_space(t, pos + 3);
      if (open >= t.size() || t[open] != '(') continue;
      const std::size_t close = match_paren(t, open);
      if (close == std::string::npos) continue;
      const std::string head = t.substr(open, close - open);
      const std::size_t colon = head.find(':');
      if (colon == std::string::npos || (colon + 1 < head.size() && head[colon + 1] == ':') ||
          (colon > 0 && head[colon - 1] == ':'))
        continue;
      const std::size_t it = find_word(head, name, colon);
      if (it != std::string::npos)
        ctx.report("unordered-iteration", pos,
                   "range-for over unordered container '" + name + "'");
    }
    // iterator walk / bulk copy: name.begin( | name.cbegin(
    for (const char* method : {".begin", ".cbegin"}) {
      std::size_t pos = 0;
      while ((pos = t.find(name + method, pos)) != std::string::npos) {
        // a preceding '.' or '->' means a member of some other object that
        // merely shares the name — not the unordered container declared here
        const char prev = pos == 0 ? '\0' : t[pos - 1];
        if (!ident_char(prev) && prev != '.' && prev != '>')
          ctx.report("unordered-iteration", pos,
                     "iterator over unordered container '" + name + "'");
        pos += name.size();
      }
    }
  }
}

void rule_raw_file_write(Context& ctx) {
  if (path_is(ctx.file.path, "src/red/store/io.cpp")) return;  // the sanctioned home
  const std::string& t = ctx.flat.text;
  for (const char* bad : {"ofstream", "fopen", "freopen", "fwrite"}) {
    for (std::size_t pos = 0; (pos = find_word(t, bad, pos)) != std::string::npos; ++pos)
      ctx.report("raw-file-write", pos,
                 std::string("'") + bad +
                     "' bypasses store::write_file_atomic / write_report_file");
  }
}

bool emitter_path(const std::string& path) {
  return path_under(path, "bench/") || path_under(path, "tools/") ||
         path_under(path, "src/red/report/");
}

// Does this call-argument expression smell floating-point? A float literal
// (1.5, 2e-3) or a name declared double/float in this file.
bool float_expr(const std::string& expr, const std::set<std::string>& floats) {
  for (std::size_t i = 0; i + 1 < expr.size(); ++i)
    if (std::isdigit(static_cast<unsigned char>(expr[i])) &&
        ((expr[i + 1] == '.' ) ||
         ((expr[i + 1] == 'e' || expr[i + 1] == 'E') && i + 2 < expr.size() &&
          (std::isdigit(static_cast<unsigned char>(expr[i + 2])) || expr[i + 2] == '-'))))
      return true;
  std::size_t i = 0;
  while (i < expr.size()) {
    if (ident_char(expr[i]) && !std::isdigit(static_cast<unsigned char>(expr[i]))) {
      const std::string name = read_ident(expr, i);
      if (floats.count(name)) return true;
      i += name.size();
    } else {
      ++i;
    }
  }
  return false;
}

void rule_double_tostring(Context& ctx) {
  const std::string& t = ctx.flat.text;
  for (std::size_t pos = 0; (pos = find_word(t, "to_string", pos)) != std::string::npos;
       ++pos) {
    const std::size_t open = skip_space(t, pos + 9);
    if (open >= t.size() || t[open] != '(') continue;
    const std::size_t close = match_paren(t, open);
    if (close == std::string::npos) continue;
    const std::string arg = t.substr(open + 1, close - open - 2);
    if (!float_expr(arg, ctx.floats)) continue;
    // fix: std::to_string -> red::report::json_number (caller adds include)
    std::size_t start = pos;
    if (start >= 5 && t.compare(start - 5, 5, "std::") == 0) start -= 5;
    ctx.report("double-tostring", pos,
               "std::to_string on a floating-point value truncates to 6 digits", true,
               pos + 9 - start, "red::report::json_number");
  }
}

void rule_double_stream(Context& ctx) {
  if (!emitter_path(ctx.file.path)) return;
  if (path_is(ctx.file.path, "src/red/report/json.cpp")) return;  // json_number's home
  const std::string& t = ctx.flat.text;
  std::size_t pos = 0;
  while ((pos = t.find("<<", pos)) != std::string::npos) {
    if ((pos > 0 && t[pos - 1] == '<') || (pos + 2 < t.size() && t[pos + 2] == '<')) {
      pos += 2;  // part of <<< or shift-shift; skip
      continue;
    }
    const std::size_t i = skip_space(t, pos + 2);
    const std::string name = read_ident(t, i);
    if (!name.empty() && ctx.floats.count(name)) {
      const std::size_t after = skip_space(t, i + name.size());
      // `<< value` only when streamed as-is (not value.member or value(...))
      if (after >= t.size() || (t[after] != '.' && t[after] != '('))
        ctx.report("double-stream", pos,
                   "raw double '" + name + "' streamed into an emitter");
    }
    pos += 2;
  }
}

void rule_naked_exit(Context& ctx) {
  if (path_is(ctx.file.path, "tools/red_cli.cpp")) return;  // documented exit-code table
  const std::string& t = ctx.flat.text;
  for (const char* bad : {"exit", "abort", "_Exit", "quick_exit"}) {
    for (std::size_t pos = 0; (pos = find_word(t, bad, pos)) != std::string::npos; ++pos) {
      const std::size_t open = skip_space(t, pos + std::strlen(bad));
      if (open >= t.size() || t[open] != '(') continue;
      ctx.report("naked-exit", pos,
                 std::string("'") + bad +
                     "()' outside the documented exit-code table in red_cli.cpp");
    }
  }
}

void rule_internal_include(Context& ctx, const std::set<std::string>& internal_headers) {
  const std::string& t = ctx.flat.text;
  // masked text blanks string literals, so scan original lines for includes
  for (std::size_t li = 0; li < ctx.file.lines.size(); ++li) {
    const std::string& line = ctx.file.lines[li];
    const std::size_t inc = line.find("#include");
    if (inc == std::string::npos) continue;
    const std::size_t q0 = line.find('"', inc);
    if (q0 == std::string::npos) continue;
    const std::size_t q1 = line.find('"', q0 + 1);
    if (q1 == std::string::npos) continue;
    const std::string target = line.substr(q0 + 1, q1 - q0 - 1);
    const std::size_t off = ctx.flat.line_start[li] + inc;
    if (target.find("../") != std::string::npos) {
      ctx.report("internal-include", off, "uplevel-relative include '" + target + "'");
      continue;
    }
    if (internal_headers.count(target)) {
      // same subsystem (directory) may include its own internals
      const std::string owner_dir = fs::path("src/" + target).parent_path().string();
      const std::string this_dir = fs::path(ctx.file.path).parent_path().string();
      if (owner_dir != this_dir)
        ctx.report("internal-include", off,
                   "'" + target + "' is subsystem-private (red-lint: internal-header)");
    }
  }
  (void)t;
}

void rule_parallel_float_accum(Context& ctx) {
  const std::string& t = ctx.flat.text;
  for (const char* entry : {"parallel_for", "parallel_chunks"}) {
    for (std::size_t pos = 0; (pos = find_word(t, entry, pos)) != std::string::npos; ++pos) {
      const std::size_t open = skip_space(t, pos + std::strlen(entry));
      if (open >= t.size() || t[open] != '(') continue;
      const std::size_t close = match_paren(t, open);
      if (close == std::string::npos) continue;
      // scan the call extent for `name +=` / `name -=` on floats declared
      // OUTSIDE the extent (a per-lane accumulator declared inside is the
      // sanctioned pattern: serial within a lane, merged after the join)
      std::set<std::string> local;
      for (const char* type : {"double", "float"}) {
        std::size_t d = open;
        while ((d = find_word(t, type, d)) != std::string::npos && d < close) {
          const std::size_t ni = skip_space(t, d + std::strlen(type));
          const std::string name = read_ident(t, ni);
          if (!name.empty()) local.insert(name);
          d += std::strlen(type);
        }
      }
      for (std::size_t i = open; i + 1 < close; ++i) {
        if ((t[i] != '+' && t[i] != '-') || t[i + 1] != '=') continue;
        if (i + 2 < t.size() && t[i + 2] == '=') continue;  // != / ==
        // identifier immediately left of the operator
        std::size_t e = i;
        while (e > open && std::isspace(static_cast<unsigned char>(t[e - 1]))) --e;
        if (e == open || t[e - 1] == ']') continue;  // indexed slot: per-index ok
        std::size_t b = e;
        while (b > open && ident_char(t[b - 1])) --b;
        const std::string name = t.substr(b, e - b);
        if (name.empty() || !ctx.floats.count(name) || local.count(name)) continue;
        ctx.report("parallel-float-accum", b,
                   "float accumulation into shared '" + name +
                       "' inside a parallel body (order-dependent)");
      }
    }
  }
}

void rule_telemetry_purity(Context& ctx) {
  const std::string& path = ctx.file.path;
  if (path_under(path, "src/red/telemetry/")) return;  // the layer's own home
  const std::string& t = ctx.flat.text;

  // Path ban: the result and serialization layers may not even mention
  // telemetry — everything they compute feeds keys, checkpoints, or results.
  static constexpr const char* kPureLayers[] = {
      "src/red/plan/", "src/red/xbar/",  "src/red/tensor/", "src/red/nn/",
      "src/red/core/", "src/red/store/", "src/red/report/"};
  bool pure_layer = false;
  for (const char* p : kPureLayers) pure_layer = pure_layer || path_under(path, p);
  if (pure_layer) {
    for (std::size_t pos = 0; (pos = find_word(t, "telemetry", pos)) != std::string::npos;
         ++pos)
      ctx.report("telemetry-purity", pos,
                 "telemetry symbol in a result/serialization layer (observe-only contract)");
    // include targets live in string literals, which the mask blanks
    for (std::size_t li = 0; li < ctx.file.lines.size(); ++li) {
      const std::string& line = ctx.file.lines[li];
      if (line.find("#include") != std::string::npos &&
          line.find("red/telemetry/") != std::string::npos)
        ctx.report("telemetry-purity", ctx.flat.line_start[li],
                   "telemetry include in a result/serialization layer");
    }
  }

  // Function-body ban everywhere else: key builders and checkpoint/result
  // codecs must stay pure even in otherwise-instrumented subsystems.
  for (const char* fname :
       {"structural_key", "checkpoint_json", "encode_outcome", "decode_outcome"}) {
    for (std::size_t pos = 0; (pos = find_word(t, fname, pos)) != std::string::npos; ++pos) {
      const std::size_t open = skip_space(t, pos + std::strlen(fname));
      if (open >= t.size() || t[open] != '(') continue;
      const std::size_t close = match_paren(t, open);
      if (close == std::string::npos) continue;
      // A definition has '{' after the parameter list, possibly behind
      // trailing qualifiers (const, noexcept, override); a call or
      // declaration does not.
      std::size_t i = skip_space(t, close);
      while (i < t.size() && ident_char(t[i])) i = skip_space(t, i + read_ident(t, i).size());
      if (i >= t.size() || t[i] != '{') continue;
      const std::size_t end = match_brace(t, i);
      if (end == std::string::npos) continue;
      const std::size_t hit = find_word(t, "telemetry", i);
      if (hit != std::string::npos && hit < end)
        ctx.report("telemetry-purity", hit,
                   std::string("telemetry symbol inside ") + fname +
                       "() (keys/checkpoints must be wall-clock-free)");
    }
  }
}

// ---- scanning ---------------------------------------------------------------

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".h" || ext == ".hpp" || ext == ".cc";
}

bool excluded(const std::string& rel) {
  return rel.find("lint_fixtures") != std::string::npos ||
         path_under(rel, "tests/golden") || rel.find("/build") != std::string::npos ||
         path_under(rel, "build");
}

std::optional<SourceFile> load_file(const fs::path& root, const fs::path& abs) {
  std::ifstream in(abs, std::ios::binary);
  if (!in) return std::nullopt;
  std::stringstream ss;
  ss << in.rdbuf();
  SourceFile f;
  f.path = fs::relative(abs, root).generic_string();
  f.lines = split_lines(ss.str());
  mask_and_collect(f);
  return f;
}

// ---- baseline ---------------------------------------------------------------

using Counts = std::map<std::pair<std::string, std::string>, int>;  // (rule,path) -> n

Counts count_findings(const std::vector<Finding>& findings) {
  Counts c;
  for (const auto& f : findings) ++c[{f.rule, f.path}];
  return c;
}

std::optional<Counts> load_baseline(const fs::path& path) {
  Counts c;
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t p1 = line.find('|');
    const std::size_t p2 = line.find('|', p1 + 1);
    if (p1 == std::string::npos || p2 == std::string::npos) continue;
    c[{line.substr(0, p1), line.substr(p1 + 1, p2 - p1 - 1)}] =
        std::stoi(line.substr(p2 + 1));
  }
  return c;
}

void write_baseline(const fs::path& path, const Counts& counts) {
  std::ostringstream out;
  out << "# red_lint baseline: rule|path|count. Counts ratchet DOWN only —\n"
         "# fix or explicitly `red-lint: allow(...)` new findings instead of\n"
         "# growing this file. Regenerate with: red_lint --write-baseline\n";
  for (const auto& [key, n] : counts) out << key.first << '|' << key.second << '|' << n << '\n';
  // The linter's own baseline is written through a plain stream on purpose:
  // it must not depend on libred building. Atomicity is irrelevant here (a
  // torn baseline fails loudly at the next parse, and the file is in git).
  // red-lint: allow(raw-file-write)
  std::ofstream f(path, std::ios::trunc);
  f << out.str();
}

// ---- fixing -----------------------------------------------------------------

int apply_fixes(const fs::path& root, std::vector<Finding>& findings) {
  // group by file, apply right-to-left within each line so columns stay valid
  std::map<std::string, std::vector<Finding*>> by_file;
  for (auto& f : findings)
    if (f.fixable) by_file[f.path].push_back(&f);
  int fixed = 0;
  for (auto& [path, fixes] : by_file) {
    std::ifstream in(root / path, std::ios::binary);
    if (!in) continue;
    std::stringstream ss;
    ss << in.rdbuf();
    std::vector<std::string> lines = split_lines(ss.str());
    std::sort(fixes.begin(), fixes.end(), [](const Finding* a, const Finding* b) {
      return a->line != b->line ? a->line > b->line : a->col > b->col;
    });
    for (const Finding* f : fixes) {
      auto& line = lines[static_cast<std::size_t>(f->line - 1)];
      if (f->col + f->len > line.size()) continue;
      line.replace(f->col, f->len, f->replacement);
      ++fixed;
    }
    // Rewriting tracked sources in a git checkout: crash-atomicity is
    // provided by version control, not fsync.
    // red-lint: allow(raw-file-write)
    std::ofstream out(root / path, std::ios::binary | std::ios::trunc);
    for (const auto& l : lines) out << l << '\n';
  }
  return fixed;
}

void usage() {
  std::cerr << "usage: red_lint [--root DIR] [--baseline FILE] [--write-baseline]\n"
               "                [--fix] [--list-rules] [paths...]\n"
               "  Lints src/ tools/ bench/ tests/ examples/ under --root (default: cwd)\n"
               "  unless explicit paths are given. Exit: 0 clean, 1 new findings, 2 error.\n";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::optional<fs::path> baseline_path;
  bool write_baseline_flag = false, fix = false;
  std::vector<std::string> targets;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);  // red-lint: allow(naked-exit) — the linter IS the tool
      }
      return argv[++i];
    };
    if (arg == "--root") root = next();
    else if (arg == "--baseline") baseline_path = next();
    else if (arg == "--write-baseline") write_baseline_flag = true;
    else if (arg == "--fix") fix = true;
    else if (arg == "--list-rules") {
      for (const auto& r : kRules) std::cout << r.name << "\n    " << r.invariant << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
      return 2;
    } else {
      targets.push_back(arg);
    }
  }
  root = fs::absolute(root);
  if (!baseline_path) baseline_path = root / "tools" / "lint_baseline.txt";

  // collect files
  std::vector<fs::path> files;
  auto add_tree = [&](const fs::path& dir) {
    if (!fs::exists(dir)) return;
    for (const auto& e : fs::recursive_directory_iterator(dir))
      if (e.is_regular_file() && lintable(e.path())) files.push_back(e.path());
  };
  if (targets.empty()) {
    for (const char* d : {"src", "tools", "bench", "tests", "examples"}) add_tree(root / d);
  } else {
    for (const auto& tgt : targets) {
      const fs::path p = fs::path(tgt).is_absolute() ? fs::path(tgt) : root / tgt;
      if (fs::is_directory(p)) add_tree(p);
      else if (fs::exists(p)) files.push_back(p);
      else {
        std::cerr << "red_lint: no such path: " << tgt << "\n";
        return 2;
      }
    }
  }
  std::sort(files.begin(), files.end());

  // load + first pass: find internal headers
  std::vector<SourceFile> sources;
  std::set<std::string> internal_headers;  // include-paths like "red/opt/objective.h"
  for (const auto& abs : files) {
    const std::string rel = fs::relative(abs, root).generic_string();
    if (excluded(rel)) continue;
    auto f = load_file(root, abs);
    if (!f) {
      std::cerr << "red_lint: cannot read " << rel << "\n";
      return 2;
    }
    if (f->internal_header && rel.rfind("src/", 0) == 0)
      internal_headers.insert(rel.substr(4));  // as written in #include "red/..."
    sources.push_back(std::move(*f));
  }

  // second pass: run rules
  std::vector<Finding> findings;
  for (const auto& f : sources) {
    const FlatText flat(f.masked);
    const std::set<std::string> floats = float_names(flat);
    const std::set<std::string> unordered = unordered_names(flat);
    Context ctx{f, flat, floats, unordered, findings};
    rule_unseeded_rng(ctx);
    rule_unordered_iteration(ctx);
    rule_raw_file_write(ctx);
    rule_double_tostring(ctx);
    rule_double_stream(ctx);
    rule_naked_exit(ctx);
    rule_internal_include(ctx, internal_headers);
    rule_parallel_float_accum(ctx);
    rule_telemetry_purity(ctx);
  }

  if (fix) {
    const int fixed = apply_fixes(root, findings);
    std::cout << "red_lint: applied " << fixed << " mechanical fix(es); re-run to verify\n";
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [](const Finding& f) { return f.fixable; }),
                   findings.end());
  }

  // baseline ratchet
  const Counts current = count_findings(findings);
  if (write_baseline_flag) {
    write_baseline(*baseline_path, current);
    std::cout << "red_lint: baseline written to " << baseline_path->string() << " ("
              << findings.size() << " finding(s) across " << current.size()
              << " file/rule pair(s))\n";
    return 0;
  }
  Counts baseline;
  if (auto loaded = load_baseline(*baseline_path)) baseline = *loaded;
  for (const auto& [key, n] : baseline)
    if (!known_rule(key.first)) {
      std::cerr << "red_lint: baseline names unknown rule '" << key.first << "'\n";
      return 2;
    }

  int new_findings = 0, baselined = 0, ratchet = 0;
  for (const auto& [key, n] : current) {
    const auto it = baseline.find(key);
    const int allowed = it == baseline.end() ? 0 : it->second;
    if (n > allowed) {
      // print the individual findings past the baseline for this pair
      int seen = 0;
      for (const auto& f : findings) {
        if (f.rule != key.first || f.path != key.second) continue;
        if (++seen <= allowed) continue;  // the baselined prefix stays silent
        std::cout << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
        ++new_findings;
      }
    } else {
      baselined += n;
      if (n < allowed) ratchet += allowed - n;
    }
  }
  for (const auto& [key, n] : baseline)
    if (current.find(key) == current.end()) ratchet += n;

  if (new_findings > 0) {
    std::cout << "red_lint: " << new_findings << " new finding(s) (" << baselined
              << " baselined). Fix them, or `red-lint: allow(<rule>)` with a comment\n"
                 "stating the invariant that makes the site safe.\n";
    return 1;
  }
  if (ratchet > 0)
    std::cout << "red_lint: clean; " << ratchet
              << " baselined finding(s) no longer fire — run --write-baseline to ratchet\n";
  else
    std::cout << "red_lint: clean (" << sources.size() << " files, " << baselined
              << " baselined finding(s))\n";
  return 0;
}
