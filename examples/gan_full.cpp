// Whole-GAN example: generator (deconvolution on RED) and discriminator
// (convolution on the shared conv engine) evaluated on one PIM chip model —
// the complete DCGAN inference loop the paper's introduction motivates.
//
// Functional pass uses reduced channels (bit-exact against the golden
// references); the cost projection uses the full-width networks.
#include <cmath>
#include <iostream>

#include "red/arch/chip.h"
#include "red/arch/conv_engine.h"
#include "red/arch/programming.h"
#include "red/common/rng.h"
#include "red/common/string_util.h"
#include "red/common/table.h"
#include "red/core/designs.h"
#include "red/nn/conv_layer.h"
#include "red/nn/deconv_reference.h"
#include "red/nn/ops.h"
#include "red/tensor/tensor_ops.h"
#include "red/workloads/generator.h"
#include "red/workloads/networks.h"

int main() {
  using namespace red;
  std::cout << "Full DCGAN loop on a ReRAM PIM chip: generator (RED) + discriminator (conv)\n\n";

  // ---- functional pass, reduced channels -----------------------------------
  const int div = 32;
  const auto gen = workloads::dcgan_generator(div);
  const auto disc = workloads::dcgan_discriminator(div);
  workloads::validate_stack(gen);
  workloads::validate_conv_stack(disc);

  Rng rng(99);
  const auto red_design = core::make_design(core::DesignKind::kRed);
  Tensor<std::int32_t> act = workloads::make_input(gen[0], rng, 1, 7);
  for (const auto& layer : gen) {
    const auto kernel = workloads::make_kernel(layer, rng, -3, 3);
    const auto out = red_design->run(layer, act, kernel);
    const bool ok = first_mismatch(nn::deconv_reference(layer, act, kernel), out).empty();
    std::cout << "G " << layer.name << ": -> " << layer.oh() << "x" << layer.ow() << "x"
              << layer.m << (ok ? " (bit-exact)" : " (MISMATCH)") << '\n';
    act = nn::requantize_shift(nn::relu(out), 6, 0, 7);
  }

  // Discriminator consumes the generated 64x64x3 image.
  const arch::ConvEngine conv_engine{arch::DesignConfig{}};
  for (const auto& layer : disc) {
    Tensor<std::int32_t> kernel(layer.kernel_shape());
    fill_random(kernel, rng, -3, 3);
    const auto out = conv_engine.run(layer, act, kernel);
    const bool ok = first_mismatch(nn::conv_reference(layer, act, kernel), out).empty();
    std::cout << "D " << layer.name << ": -> " << layer.oh() << "x" << layer.ow() << "x"
              << layer.m << (ok ? " (bit-exact)" : " (MISMATCH)") << '\n';
    act = nn::requantize_shift(nn::relu(out), 6, 0, 7);
  }
  std::cout << "discriminator head input: " << act.shape().to_string() << "\n\n";

  // ---- full-width cost + chip deployment -----------------------------------
  const auto gen_full = workloads::dcgan_generator();
  const auto disc_full = workloads::dcgan_discriminator();
  arch::DesignConfig cfg;
  const auto red_full = core::make_design(core::DesignKind::kRed, cfg);
  const arch::ConvEngine conv_full(cfg);

  double lat = 0, energy = 0, prog_energy = 0;
  for (const auto& layer : gen_full) {
    const auto c = red_full->cost(layer);
    lat += c.total_latency().value();
    energy += c.total_energy().value();
    prog_energy += arch::programming_cost(red_full->activity(layer), cfg).energy.value();
  }
  for (const auto& layer : disc_full) {
    const auto c = conv_full.cost(layer);
    lat += c.total_latency().value();
    energy += c.total_energy().value();
    prog_energy += arch::programming_cost(conv_full.activity(layer), cfg).energy.value();
  }
  std::cout << "full-width generator+discriminator (RED generator):\n  latency "
            << format_double(lat / 1e3, 2) << " us/image, energy "
            << format_double(energy / 1e6, 3) << " uJ/image, programming "
            << format_double(prog_energy / 1e6, 1) << " uJ once (break-even ~"
            << static_cast<std::int64_t>(std::ceil(prog_energy / energy)) << " images)\n";

  arch::ChipConfig chip;
  chip.banks = 16;
  chip.subarrays_per_bank = 512;
  const auto plan = arch::plan_chip(*red_full, gen_full, chip);
  std::cout << "generator chip plan: " << plan.required_subarrays << "/"
            << plan.available_subarrays << " subarrays ("
            << format_percent(plan.occupancy(), 1) << " occupancy, "
            << (plan.fits ? "fits" : "DOES NOT FIT") << "), chip "
            << format_double(plan.chip_area.value() / 1e6, 1) << " mm^2\n";
  return 0;
}
