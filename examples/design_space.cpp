// Design-space exploration: the Sec. III-C area/parallelism trade-off as a
// Pareto sweep over the fold factor and mux ratio for FCN_Deconv2.
//
// Demonstrates the explore::SweepDriver — the full grid evaluates in
// parallel on the thread pool, and the follow-up sweep around the chosen
// point is served from the driver's memo — and using the cost model
// programmatically to pick a configuration under an area budget (the paper
// picks fold 2 = 128 sub-arrays).
#include <iostream>
#include <vector>

#include "red/common/string_util.h"
#include "red/common/table.h"
#include "red/explore/sweep.h"
#include "red/opt/pareto.h"
#include "red/workloads/benchmarks.h"

int main() {
  using namespace red;
  const auto layer = workloads::fcn_deconv2();
  std::cout << "Design space for " << layer.to_string() << "\n\n";

  std::vector<explore::SweepPoint> grid;
  for (int fold : {1, 2, 4, 8}) {
    for (int mux : {4, 8, 16}) {
      explore::SweepPoint p;
      p.kind = core::DesignKind::kRed;
      p.cfg.red_fold = fold;
      p.cfg.mux_ratio = mux;
      p.spec = layer;
      grid.push_back(p);
    }
  }
  explore::SweepDriver driver(/*threads=*/4);
  const auto outcomes = driver.evaluate(grid);

  struct Point {
    int fold;
    int mux;
    double latency_us;
    double energy_uj;
    double area_mm2;
    std::int64_t sub_arrays;
  };
  std::vector<Point> points;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& cost = outcomes[i].cost;
    points.push_back({grid[i].cfg.red_fold, grid[i].cfg.mux_ratio,
                      cost.total_latency().value() / 1e3, cost.total_energy().value() / 1e6,
                      cost.total_area().value() / 1e6, outcomes[i].activity.sc_units});
  }

  TextTable t({"fold", "mux", "sub-arrays", "latency (us)", "energy (uJ)", "area (mm^2)",
               "Pareto"});
  // The latency/area trade-off column comes from the shared n-dimensional
  // dominance filter (opt::non_dominated_mask) instead of a hand-rolled loop.
  std::vector<std::vector<double>> rows;
  for (const auto& p : points) rows.push_back({p.latency_us, p.area_mm2});
  const auto pareto = opt::non_dominated_mask(rows);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    t.add_row({std::to_string(p.fold), std::to_string(p.mux), std::to_string(p.sub_arrays),
               format_double(p.latency_us, 1), format_double(p.energy_uj, 2),
               format_double(p.area_mm2, 4), pareto[i] ? "*" : ""});
  }
  std::cout << t.to_ascii();

  // Pick the fastest configuration under a 128-sub-array budget, as the
  // paper does for this layer.
  const Point* best = nullptr;
  for (const auto& p : points)
    if (p.sub_arrays <= 128 && (best == nullptr || p.latency_us < best->latency_us)) best = &p;
  if (best != nullptr) {
    std::cout << "\nFastest config within the paper's 128-sub-array budget: fold " << best->fold
              << ", mux " << best->mux << " -> " << format_double(best->latency_us, 1)
              << " us, " << format_double(best->area_mm2, 4) << " mm^2\n";

    // Zoom into the chosen fold: the mux sub-sweep overlaps the full grid,
    // so the driver serves it entirely from the memo.
    std::vector<explore::SweepPoint> zoom;
    for (int mux : {4, 8, 16}) {
      explore::SweepPoint p;
      p.kind = core::DesignKind::kRed;
      p.cfg.red_fold = best->fold;
      p.cfg.mux_ratio = mux;
      p.spec = layer;
      zoom.push_back(p);
    }
    std::cout << "\nmux sub-sweep at fold " << best->fold << ":";
    for (const auto& o : driver.evaluate(zoom))
      std::cout << " " << format_double(o.cost.total_latency().value() / 1e3, 1) << "us"
                << (o.from_cache ? " (cached)" : "");
    std::cout << '\n';
  }
  std::cout << "sweep: " << driver.stats().evaluated << " evaluated, "
            << driver.stats().cache_hits << " served from cache\n";
  return 0;
}
