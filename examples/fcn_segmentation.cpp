// FCN semantic-segmentation example: the voc-fcn8s up-sampling head on RED.
//
// A synthetic 16x16x21 class-score map (21 PASCAL VOC classes) is up-sampled
// through the fcn8s deconvolution chain (16 -> 34 -> 70 -> 568). The final
// stage is Table I's FCN_Deconv2 — the layer where RED's advantage peaks
// (stride 8: 64 computation modes, folded onto 128 sub-arrays, Sec. III-C).
#include <algorithm>
#include <iostream>

#include "red/common/rng.h"
#include "red/common/string_util.h"
#include "red/core/designs.h"
#include "red/core/red_design.h"
#include "red/report/evaluation.h"
#include "red/tensor/tensor_ops.h"
#include "red/workloads/generator.h"
#include "red/workloads/networks.h"

namespace {

// Argmax-over-classes segmentation map rendered as class letters.
void render_segmentation(const red::Tensor<std::int32_t>& scores, int max_side) {
  const auto& s = scores.shape();
  const int classes = static_cast<int>(s.dim(1));
  const int side = static_cast<int>(s.dim(2));
  const int step = std::max(1, side / max_side);
  for (int y = 0; y < side; y += step) {
    std::cout << "    ";
    for (int x = 0; x < side; x += step) {
      int best = 0;
      for (int c = 1; c < classes; ++c)
        if (scores.at(0, c, y, x) > scores.at(0, best, y, x)) best = c;
      std::cout << static_cast<char>('a' + (best % 26));
    }
    std::cout << '\n';
  }
}

}  // namespace

int main() {
  using namespace red;
  std::cout << "voc-fcn8s up-sampling head on RED: 16x16x21 -> 568x568x21\n\n";

  const auto stack = workloads::fcn8s_upsampling();
  workloads::validate_stack(stack);

  Rng rng(42);
  Tensor<std::int32_t> scores = workloads::make_input(stack[0], rng, 1, 7);
  const auto red_design = core::make_design(core::DesignKind::kRed);

  for (const auto& layer : stack) {
    const auto kernel = workloads::make_kernel(layer, rng, -3, 3);
    arch::RunStats stats;
    const auto out = red_design->run(layer, scores, kernel, &stats);
    const auto cmp = report::compare_layer(layer);
    std::cout << layer.name << ": " << layer.ih << " -> " << layer.oh() << " (stride "
              << layer.stride << ", kernel " << layer.kh << "), " << stats.cycles
              << " RED cycles, speedup vs zero-padding "
              << format_speedup(cmp.red_speedup_vs_zp()) << ", energy saving "
              << format_percent(cmp.red_energy_saving_vs_zp(), 1) << '\n';
    // Clamp scores into int8-ish range for the next stage.
    scores = Tensor<std::int32_t>(layer.output_shape());
    for (std::int64_t i = 0; i < out.size(); ++i)
      scores.data()[i] = static_cast<std::int32_t>(1 + std::abs(out.data()[i]) % 7);
  }

  std::cout << "\nFinal 568x568 argmax segmentation (downsampled to 40x40):\n";
  render_segmentation(scores, 40);

  // Show the Sec. III-C configuration on the big layer.
  arch::DesignConfig cfg;
  const core::RedDesign red(cfg);
  const auto big = stack.back();
  const auto act = red.activity(big);
  std::cout << "\n" << big.name << " mapping: " << act.groups << " computation modes, "
            << act.sc_units << " sub-arrays (fold " << act.fold << "), " << act.cycles
            << " cycles vs " << big.oh() * big.ow() << " for zero-padding\n";
  return 0;
}
