// GAN generator example: run a DCGAN generator's deconvolution stack
// end-to-end on RED, layer by layer, the scenario motivating the paper's
// GAN benchmarks (a latent code up-sampled to a 64x64 RGB image).
//
// The functional pipeline runs with reduced channels (the crossbar math is
// channel-count independent); the cost projection uses the full-width
// network so the latency/energy numbers correspond to the real model.
#include <iostream>

#include "red/common/rng.h"
#include "red/common/string_util.h"
#include "red/common/table.h"
#include "red/core/designs.h"
#include "red/nn/deconv_reference.h"
#include "red/report/evaluation.h"
#include "red/tensor/tensor_ops.h"
#include "red/workloads/generator.h"
#include "red/workloads/networks.h"

namespace {

// Render one output feature map as ASCII luminance (proof the data flowed).
void render_map(const red::Tensor<std::int32_t>& t, int map, int max_side) {
  const auto& s = t.shape();
  const int side = static_cast<int>(s.dim(2));
  const int step = std::max(1, side / max_side);
  std::int64_t lo = t.at(0, map, 0, 0), hi = lo;
  for (int y = 0; y < side; ++y)
    for (int x = 0; x < side; ++x) {
      lo = std::min<std::int64_t>(lo, t.at(0, map, y, x));
      hi = std::max<std::int64_t>(hi, t.at(0, map, y, x));
    }
  const char* shades = " .:-=+*#%@";
  for (int y = 0; y < side; y += step) {
    std::cout << "    ";
    for (int x = 0; x < side; x += step) {
      const double norm =
          hi > lo ? static_cast<double>(t.at(0, map, y, x) - lo) / static_cast<double>(hi - lo)
                  : 0.0;
      std::cout << shades[static_cast<int>(norm * 9.0)];
    }
    std::cout << '\n';
  }
}

}  // namespace

int main() {
  using namespace red;
  std::cout << "DCGAN generator on RED: latent 4x4 -> 64x64 RGB\n\n";

  // ---- functional pass (reduced channels, bit-exact vs golden) -------------
  const auto stack = workloads::dcgan_generator(/*channel_div=*/32);
  workloads::validate_stack(stack);
  const auto red_design = core::make_design(core::DesignKind::kRed);

  Rng rng(7);
  Tensor<std::int32_t> activation = workloads::make_input(stack[0], rng, 1, 7);
  for (const auto& layer : stack) {
    const auto kernel = workloads::make_kernel(layer, rng, -3, 3);
    arch::RunStats stats;
    const auto out = red_design->run(layer, activation, kernel, &stats);
    const bool exact = first_mismatch(nn::deconv_reference(layer, activation, kernel), out).empty();
    std::cout << layer.name << ": " << layer.ih << "x" << layer.iw << "x" << layer.c << " -> "
              << layer.oh() << "x" << layer.ow() << "x" << layer.m << ", " << stats.cycles
              << " RED cycles, " << (exact ? "bit-exact" : "MISMATCH") << '\n';
    // ReLU-and-requantize stand-in keeps the next stage's inputs in range.
    activation = Tensor<std::int32_t>(layer.output_shape());
    for (std::int64_t i = 0; i < out.size(); ++i)
      activation.data()[i] = static_cast<std::int32_t>(1 + std::abs(out.data()[i]) % 7);
  }
  std::cout << "\nGenerated 64x64 image, channel 0 (ASCII luminance):\n";
  render_map(activation, 0, 32);

  // ---- cost projection at full network width ------------------------------
  std::cout << "\nFull-width cost projection (per design, whole generator):\n";
  TextTable t({"design", "latency (us)", "energy (uJ)", "speedup vs ZP", "energy saving"});
  const auto full = workloads::dcgan_generator(1);
  double zp_lat = 0, zp_en = 0, pf_lat = 0, pf_en = 0, red_lat = 0, red_en = 0;
  for (const auto& layer : full) {
    const auto cmp = report::compare_layer(layer);
    zp_lat += cmp.zero_padding.total_latency().value();
    zp_en += cmp.zero_padding.total_energy().value();
    pf_lat += cmp.padding_free.total_latency().value();
    pf_en += cmp.padding_free.total_energy().value();
    red_lat += cmp.red.total_latency().value();
    red_en += cmp.red.total_energy().value();
  }
  const auto row = [&](const char* n, double lat, double en) {
    t.add_row({n, format_double(lat / 1e3, 2), format_double(en / 1e6, 3),
               format_speedup(zp_lat / lat), format_percent(1.0 - en / zp_en, 1)});
  };
  row("zero-padding", zp_lat, zp_en);
  row("padding-free", pf_lat, pf_en);
  row("RED", red_lat, red_en);
  std::cout << t.to_ascii();
  return 0;
}
