// Quickstart: run one deconvolution layer on RED and the two baselines.
//
//   1. pick a Table I layer (SNGAN's 4x4 -> 8x8 deconv),
//   2. run it functionally through each design's crossbar pipeline,
//   3. check the outputs against the golden transposed convolution,
//   4. print the calibrated latency/energy/area comparison.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <iostream>

#include "red/common/rng.h"
#include "red/common/string_util.h"
#include "red/core/designs.h"
#include "red/nn/deconv_reference.h"
#include "red/report/evaluation.h"
#include "red/report/figures.h"
#include "red/sim/engine.h"
#include "red/tensor/tensor_ops.h"
#include "red/workloads/benchmarks.h"
#include "red/workloads/generator.h"

int main() {
  using namespace red;

  // A real benchmark layer: GAN_Deconv3 (SNGAN on CIFAR-10), Table I.
  const nn::DeconvLayerSpec layer = workloads::gan_deconv3();
  std::cout << "Layer: " << layer.to_string() << "\n\n";

  // Deterministic int8 tensors of the exact benchmark shape.
  Rng rng(2019);
  const auto input = workloads::make_input(layer, rng, 1, 7);
  const auto kernel = workloads::make_kernel(layer, rng, -7, 7);
  const auto golden = nn::deconv_reference(layer, input, kernel);

  // Functional run + analytic cost for each design. simulate() also verifies
  // that the measured cycle/drive/conversion counts match the analytic model.
  for (const auto& design : core::make_all_designs()) {
    const auto result = sim::simulate(*design, layer, input, kernel, /*check=*/true);
    const bool exact = first_mismatch(golden, result.output).empty();
    std::cout << design->name() << ": " << (exact ? "bit-exact" : "MISMATCH") << ", "
              << result.measured.cycles << " cycles, "
              << format_double(result.cost.total_latency().value() / 1e3, 2) << " us, "
              << format_double(result.cost.total_energy().value() / 1e6, 3) << " uJ, "
              << format_double(result.cost.total_area().value() / 1e6, 3) << " mm^2\n";
  }

  // The headline comparison (Fig. 7/8/9 for this layer).
  const auto cmp = report::compare_layer(layer);
  std::cout << "\nRED vs zero-padding: " << format_speedup(cmp.red_speedup_vs_zp())
            << " speedup, " << format_percent(cmp.red_energy_saving_vs_zp(), 1)
            << " energy saving, " << format_percent(cmp.red_area_overhead_vs_zp(), 1)
            << " area overhead\n\n";

  // Per-component Table II breakdown of RED.
  std::cout << "RED component breakdown:\n"
            << report::component_breakdown(cmp.red).to_ascii();
  return 0;
}
